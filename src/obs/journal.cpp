#include "anycast/obs/journal.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace anycast::obs {
namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Frame header preceding each serialised event in a thread arena.
struct FrameHeader {
  std::uint32_t payload_bytes = 0;
  std::uint8_t cls = 0;  // MetricClass
  std::uint64_t order = 0;
};
constexpr std::size_t kFrameHeaderBytes = 4 + 1 + 8;

/// One thread's event arena. The owner thread appends frames and
/// publishes with a release store on `committed`; the drain side (under
/// the journal mutex) copies [drained_pos, committed) and acknowledges
/// through `drained_ack`. When everything written has been drained the
/// owner rewinds to offset 0 and bumps `gen`, so a long-lived thread
/// reuses its arena instead of exhausting it — the only coordination is
/// three atomics, no lock on the owner's path.
///
/// The ack packs (generation, offset) into one word: an offset alone is
/// ambiguous, because an ack for offset X of generation G would be
/// indistinguishable from one for the same offset after a rewind — and
/// equal offsets are the common case when a thread emits same-sized
/// events (every census.walk line is within a byte or two of its
/// neighbours). A stale-generation ack must never authorise a rewind:
/// that is exactly the race that silently loses the undrained frame.
struct ThreadLog {
  explicit ThreadLog(std::size_t capacity_bytes)
      : capacity(capacity_bytes), data(new char[capacity_bytes]) {}

  static std::uint64_t pack_ack(std::uint32_t gen, std::size_t offset) {
    return (static_cast<std::uint64_t>(gen) << 32) |
           static_cast<std::uint64_t>(offset & 0xFFFFFFFFu);
  }

  const std::size_t capacity;  // capped at 4 GiB: the ack packs 32 bits
  std::unique_ptr<char[]> data;
  std::size_t reserved = 0;                    // owner-only append cursor
  std::atomic<std::size_t> committed{0};       // owner publishes
  std::atomic<std::uint64_t> drained_ack{0};   // (gen, offset) acknowledged
  std::atomic<std::uint32_t> gen{0};           // owner bumps on rewind
  // Drain-side bookkeeping, guarded by the journal mutex.
  std::size_t drained_pos = 0;
  std::uint32_t drained_gen = 0;
};

void validate_key(std::string_view key) {
  if (key.empty()) throw std::logic_error("event key must not be empty");
  for (const char c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '.';
    if (!ok) {
      throw std::logic_error("event key must be [a-z0-9_.]: " +
                             std::string(key));
    }
  }
}

/// Bounded in-place JSON writer: appends never overflow, and `fits`
/// lets emit() stop adding fields while the line is still well-formed.
struct LineWriter {
  char* buffer;
  std::size_t capacity;
  std::size_t size = 0;

  [[nodiscard]] bool fits(std::size_t more) const {
    return size + more <= capacity;
  }
  void raw(std::string_view text) {
    const std::size_t n = std::min(text.size(), capacity - size);
    std::memcpy(buffer + size, text.data(), n);
    size += n;
  }
  void escaped(std::string_view text) {
    for (const char c : text) {
      if (size + 2 > capacity) return;
      if (c == '"' || c == '\\') buffer[size++] = '\\';
      if (static_cast<unsigned char>(c) < 0x20) {
        raw("\\n");  // journal strings are single-line by construction
        continue;
      }
      buffer[size++] = c;
    }
  }
  void number(const char* format, double value) {
    char tmp[64];
    const int n = std::snprintf(tmp, sizeof tmp, format, value);
    if (n > 0) raw(std::string_view(tmp, static_cast<std::size_t>(n)));
  }
  void u64(std::uint64_t value) {
    char tmp[24];
    const int n = std::snprintf(tmp, sizeof tmp, "%llu",
                                static_cast<unsigned long long>(value));
    if (n > 0) raw(std::string_view(tmp, static_cast<std::size_t>(n)));
  }
  void i64(std::int64_t value) {
    char tmp[24];
    const int n = std::snprintf(tmp, sizeof tmp, "%lld",
                                static_cast<long long>(value));
    if (n > 0) raw(std::string_view(tmp, static_cast<std::size_t>(n)));
  }
};

/// Worst-case bytes a field can take before we stop appending and close
/// the line with a truncation marker instead.
constexpr std::size_t kTruncateReserve = 24;  // ,"truncated":true}\n

struct Bucket {
  double tokens = 0.0;
  std::int64_t last_ns = 0;
};

}  // namespace

std::string_view to_string(Severity severity) {
  switch (severity) {
    case Severity::kDebug: return "debug";
    case Severity::kInfo: return "info";
    case Severity::kWarn: return "warn";
    case Severity::kError: return "error";
  }
  return "unknown";
}

struct Journal::Impl {
  std::uint64_t id = 0;  // process-unique, keys thread-local arena lookup
  std::atomic<std::uint64_t> generation{1};  // bumped by reset()
  std::atomic<bool> recording{false};
  std::atomic<std::uint8_t> min_severity{
      static_cast<std::uint8_t>(Severity::kDebug)};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> rate_limited{0};
  std::atomic<std::uint64_t> order_seq{Journal::kReductionOrderBase};
  std::atomic<std::size_t> arena_capacity{1 << 20};
  std::atomic<std::int64_t> epoch_ns{steady_ns()};

  mutable std::mutex mutex;  // arena registry, drain, staging, file
  std::vector<std::unique_ptr<ThreadLog>> logs;
  std::vector<std::pair<std::uint64_t, std::string>> staged_semantic;
  std::string committed_semantic;
  std::uint64_t recorded = 0;  // drained timing + committed semantic
  std::FILE* file = nullptr;

  std::mutex limiter_mutex;  // timing-class path only
  /// Checked lock-free before limiter_mutex so an unconfigured limiter
  /// (the common case) costs worker threads no lock on timing emits.
  std::atomic<bool> limiter_on{false};
  double limit_per_s = 0.0;  // 0 = limiter off
  double limit_burst = 0.0;
  std::unordered_map<std::string, Bucket> buckets;

  /// Staged-batch safety cap: the per-run semantic volume is structurally
  /// bounded (a handful of events per VP), so hitting this means a
  /// runaway emitter — count drops instead of growing without bound.
  static constexpr std::size_t kMaxStagedEvents = 1 << 20;

  bool rate_limited_now(std::string_view key) {
    if (!limiter_on.load(std::memory_order_relaxed)) return false;
    const std::lock_guard lock(limiter_mutex);
    if (limit_per_s < 0.0 || limit_burst <= 0.0) return false;
    auto it = buckets.find(std::string(key));
    if (it == buckets.end()) {
      // Bound the map for long-running daemons: evict the bucket touched
      // longest ago. A re-appearing key restarts with a full burst, which
      // only ever under-limits — never drops an event it should not.
      if (buckets.size() >= Journal::kMaxLimiterKeys) {
        auto oldest = buckets.begin();
        for (auto probe = buckets.begin(); probe != buckets.end(); ++probe) {
          if (probe->second.last_ns < oldest->second.last_ns) oldest = probe;
        }
        buckets.erase(oldest);
      }
      it = buckets.try_emplace(std::string(key)).first;
    }
    Bucket& bucket = it->second;
    const std::int64_t now = steady_ns();
    if (bucket.last_ns == 0) bucket.tokens = limit_burst;
    bucket.tokens = std::min(
        limit_burst, bucket.tokens + static_cast<double>(now - bucket.last_ns) *
                                         1e-9 * limit_per_s);
    bucket.last_ns = now;
    if (bucket.tokens < 1.0) return true;
    bucket.tokens -= 1.0;
    return false;
  }

  /// Drains every arena. Caller holds `mutex`. Timing payloads go to the
  /// file (when open); semantic payloads are staged for the next commit.
  void drain() {
    for (const auto& log : logs) {
      const std::uint32_t g1 = log->gen.load(std::memory_order_acquire);
      const std::size_t c = log->committed.load(std::memory_order_acquire);
      const std::uint32_t g2 = log->gen.load(std::memory_order_acquire);
      // A rewind raced with this read pair: skip the round, the next
      // flush sees a stable generation.
      if (g1 != g2) continue;
      if (g1 != log->drained_gen) {
        log->drained_pos = 0;
        log->drained_gen = g1;
      }
      if (c <= log->drained_pos) continue;
      std::size_t at = log->drained_pos;
      while (at + kFrameHeaderBytes <= c) {
        FrameHeader header;
        std::memcpy(&header.payload_bytes, log->data.get() + at, 4);
        std::memcpy(&header.cls, log->data.get() + at + 4, 1);
        std::memcpy(&header.order, log->data.get() + at + 5, 8);
        at += kFrameHeaderBytes;
        if (at + header.payload_bytes > c) break;  // never happens: frames
                                                   // publish whole
        const std::string_view payload(log->data.get() + at,
                                       header.payload_bytes);
        at += header.payload_bytes;
        if (static_cast<MetricClass>(header.cls) == MetricClass::kSemantic) {
          if (staged_semantic.size() >= kMaxStagedEvents) {
            dropped.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          staged_semantic.emplace_back(header.order, std::string(payload));
        } else {
          ++recorded;
          if (file != nullptr) {
            std::fwrite(payload.data(), 1, payload.size(), file);
            std::fwrite("\n", 1, 1, file);
          }
        }
      }
      log->drained_pos = c;
      log->drained_ack.store(ThreadLog::pack_ack(g1, c),
                             std::memory_order_release);
    }
  }

  /// Sorts and writes the staged semantic batch, then fsyncs. Caller
  /// holds `mutex`.
  void commit_batch() {
    drain();
    std::stable_sort(staged_semantic.begin(), staged_semantic.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    for (auto& [order, line] : staged_semantic) {
      ++recorded;
      committed_semantic += line;
      committed_semantic += '\n';
      if (file != nullptr) {
        std::fwrite(line.data(), 1, line.size(), file);
        std::fwrite("\n", 1, 1, file);
      }
    }
    staged_semantic.clear();
    if (file != nullptr) {
      std::fflush(file);
      ::fsync(::fileno(file));
    }
  }
};

namespace {

struct TlsJournalEntry {
  std::uint64_t journal_id = 0;
  std::uint64_t generation = 0;
  ThreadLog* log = nullptr;  // owned by the journal's Impl
};

// No destructor needed: arenas are owned by their journal, and drained
// data survives thread exit. Entries are matched by (id, generation)
// integers, so a stale entry for a destroyed or reset journal is simply
// skipped, never dereferenced.
thread_local std::vector<TlsJournalEntry> g_tls_journals;

ThreadLog* tls_log_slow(Journal::Impl* impl, std::uint64_t generation) {
  auto owned = std::make_unique<ThreadLog>(
      impl->arena_capacity.load(std::memory_order_relaxed));
  ThreadLog* log = owned.get();
  {
    const std::lock_guard lock(impl->mutex);
    impl->logs.push_back(std::move(owned));
  }
  // Replace a stale same-journal entry (pre-reset generation) in place.
  for (TlsJournalEntry& entry : g_tls_journals) {
    if (entry.journal_id == impl->id) {
      entry.generation = generation;
      entry.log = log;
      return log;
    }
  }
  g_tls_journals.push_back(TlsJournalEntry{impl->id, generation, log});
  return log;
}

inline ThreadLog* tls_log(Journal::Impl* impl) {
  const std::uint64_t generation =
      impl->generation.load(std::memory_order_acquire);
  for (const TlsJournalEntry& entry : g_tls_journals) {
    if (entry.journal_id == impl->id && entry.generation == generation) {
      return entry.log;
    }
  }
  return tls_log_slow(impl, generation);
}

std::uint64_t next_journal_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1);
}

}  // namespace

Journal::Journal() : impl_(new Impl()) { impl_->id = next_journal_id(); }

Journal::~Journal() {
  close();
  delete impl_;
}

void Journal::set_recording(bool recording) {
  impl_->recording.store(recording, std::memory_order_relaxed);
}

bool Journal::recording() const {
  return impl_->recording.load(std::memory_order_relaxed);
}

bool Journal::open(const std::filesystem::path& path) {
  std::FILE* file = std::fopen(path.string().c_str(), "wb");
  if (file == nullptr) return false;
  {
    const std::lock_guard lock(impl_->mutex);
    if (impl_->file != nullptr) std::fclose(impl_->file);
    impl_->file = file;
  }
  set_recording(true);
  return true;
}

void Journal::flush() {
  const std::lock_guard lock(impl_->mutex);
  impl_->drain();
  if (impl_->file != nullptr) std::fflush(impl_->file);
}

void Journal::commit() {
  const std::lock_guard lock(impl_->mutex);
  impl_->commit_batch();
}

void Journal::close() {
  const std::lock_guard lock(impl_->mutex);
  impl_->commit_batch();
  if (impl_->file != nullptr) {
    std::fclose(impl_->file);
    impl_->file = nullptr;
  }
}

std::string Journal::semantic_text() const {
  const std::lock_guard lock(impl_->mutex);
  return impl_->committed_semantic;
}

std::uint64_t Journal::next_order() {
  return impl_->order_seq.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Journal::events_dropped() const {
  return impl_->dropped.load(std::memory_order_relaxed);
}

std::uint64_t Journal::events_rate_limited() const {
  return impl_->rate_limited.load(std::memory_order_relaxed);
}

std::uint64_t Journal::events_recorded() const {
  const std::lock_guard lock(impl_->mutex);
  return impl_->recorded + impl_->staged_semantic.size();
}

void Journal::set_min_severity(Severity severity) {
  impl_->min_severity.store(static_cast<std::uint8_t>(severity),
                            std::memory_order_relaxed);
}

void Journal::set_rate_limit(double per_second, double burst) {
  const std::lock_guard lock(impl_->limiter_mutex);
  impl_->limit_per_s = per_second;
  impl_->limit_burst = burst;
  impl_->buckets.clear();
  impl_->limiter_on.store(per_second >= 0.0 && burst > 0.0,
                          std::memory_order_relaxed);
}

std::size_t Journal::rate_limiter_key_count() const {
  const std::lock_guard lock(impl_->limiter_mutex);
  return impl_->buckets.size();
}

void Journal::set_arena_capacity(std::size_t bytes) {
  impl_->arena_capacity.store(
      std::clamp<std::size_t>(bytes, 4096, 0xFFFFFFFFu),
      std::memory_order_relaxed);
}

void Journal::reset() {
  {
    const std::lock_guard lock(impl_->mutex);
    // Invalidate every thread's cached arena pointer before freeing the
    // arenas; stale TLS entries fail the generation match and re-register.
    impl_->generation.fetch_add(1, std::memory_order_release);
    impl_->logs.clear();
    impl_->staged_semantic.clear();
    impl_->committed_semantic.clear();
    impl_->recorded = 0;
    if (impl_->file != nullptr) {
      std::fclose(impl_->file);
      impl_->file = nullptr;
    }
  }
  impl_->dropped.store(0, std::memory_order_relaxed);
  impl_->rate_limited.store(0, std::memory_order_relaxed);
  impl_->order_seq.store(kReductionOrderBase, std::memory_order_relaxed);
  impl_->epoch_ns.store(steady_ns(), std::memory_order_relaxed);
  const std::lock_guard lock(impl_->limiter_mutex);
  impl_->buckets.clear();
}

void Journal::emit(MetricClass cls, Severity sev, std::string_view key,
                   std::uint64_t order,
                   std::initializer_list<EventField> fields) {
  if (!impl_->recording.load(std::memory_order_relaxed)) return;
  if (static_cast<std::uint8_t>(sev) <
      impl_->min_severity.load(std::memory_order_relaxed)) {
    return;
  }
  validate_key(key);
  if (cls == MetricClass::kTiming && impl_->rate_limited_now(key)) {
    impl_->rate_limited.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  char payload[768];
  LineWriter line{payload, sizeof payload};
  line.raw("{\"class\":\"");
  line.raw(to_string(cls));
  line.raw("\",\"sev\":\"");
  line.raw(to_string(sev));
  line.raw("\",\"key\":\"");
  line.raw(key);
  line.raw("\",\"order\":");
  line.u64(order);
  if (cls == MetricClass::kTiming) {
    // Wall-clock stamp for timing events only: a semantic event carrying
    // a timestamp could never be byte-identical across runs.
    line.raw(",\"t_ms\":");
    line.number("%.3f",
                static_cast<double>(
                    steady_ns() -
                    impl_->epoch_ns.load(std::memory_order_relaxed)) /
                    1e6);
  }
  bool truncated = false;
  for (const EventField& field : fields) {
    // Conservative worst case for one field: name, quotes, and a value.
    const std::size_t worst = field.name.size() * 2 + 96 +
                              (field.kind == EventField::Kind::kStr
                                   ? field.str.size() * 2
                                   : 0);
    if (!line.fits(worst + kTruncateReserve)) {
      truncated = true;
      break;
    }
    line.raw(",\"");
    line.escaped(field.name);
    line.raw("\":");
    switch (field.kind) {
      case EventField::Kind::kU64: line.u64(field.u64); break;
      case EventField::Kind::kI64: line.i64(field.i64); break;
      case EventField::Kind::kF64: line.number("%.17g", field.f64); break;
      case EventField::Kind::kBool:
        line.raw(field.flag ? "true" : "false");
        break;
      case EventField::Kind::kStr:
        line.raw("\"");
        line.escaped(field.str);
        line.raw("\"");
        break;
    }
  }
  if (truncated) line.raw(",\"truncated\":true");
  line.raw("}");

  ThreadLog* log = tls_log(impl_);
  // Rewind when every published byte of the CURRENT generation has been
  // drained: the arena is empty, so restarting at offset 0 loses
  // nothing. The ack must match generation and offset both — see the
  // ThreadLog comment for the lost-frame race a bare offset permits.
  if (log->reserved > 0 &&
      log->drained_ack.load(std::memory_order_acquire) ==
          ThreadLog::pack_ack(log->gen.load(std::memory_order_relaxed),
                              log->reserved)) {
    log->reserved = 0;
    log->committed.store(0, std::memory_order_relaxed);
    log->gen.fetch_add(1, std::memory_order_release);
  }
  const std::size_t need = kFrameHeaderBytes + line.size;
  if (log->reserved + need > log->capacity) {
    impl_->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  char* at = log->data.get() + log->reserved;
  const auto payload_bytes = static_cast<std::uint32_t>(line.size);
  const auto cls_byte = static_cast<std::uint8_t>(cls);
  std::memcpy(at, &payload_bytes, 4);
  std::memcpy(at + 4, &cls_byte, 1);
  std::memcpy(at + 5, &order, 8);
  std::memcpy(at + kFrameHeaderBytes, payload, line.size);
  log->reserved += need;
  log->committed.store(log->reserved, std::memory_order_release);
}

Journal& journal() {
  // Leaked on purpose, same reasoning as obs::metrics(): emitting
  // threads may retire after static destruction began.
  static Journal* global = new Journal();
  return *global;
}

std::string_view journal_consistent_prefix(std::string_view text) {
  const std::size_t last_newline = text.rfind('\n');
  if (last_newline == std::string_view::npos) return {};
  return text.substr(0, last_newline + 1);
}

}  // namespace anycast::obs
