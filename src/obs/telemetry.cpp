#include "anycast/obs/telemetry.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <chrono>
#include <cstdio>
#include <system_error>

#include "anycast/obs/journal.hpp"
#include "anycast/obs/latency.hpp"
#include "anycast/obs/metrics.hpp"

namespace anycast::obs {
namespace {

double steady_seconds() {
  static const auto start = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

constexpr std::size_t kPerSecondCapacity = 600;  // 10 minutes of seconds
constexpr std::size_t kPerRoundCapacity = 1024;

}  // namespace

TelemetryPlane::TelemetryPlane()
    : per_second_("serving_per_second",
                  {"qps", "errors_per_s", "p50_us", "p99_us", "p999_us"},
                  kPerSecondCapacity),
      per_round_("census_per_round",
                 {"coverage", "completed", "active", "probes", "echo_rate",
                  "dirty", "anycast", "round_ms"},
                 kPerRoundCapacity) {}

void TelemetryPlane::note_query_error() {
  query_errors_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t TelemetryPlane::query_errors() const {
  return query_errors_.load(std::memory_order_relaxed);
}

void TelemetryPlane::tick() { tick_at(steady_seconds()); }

void TelemetryPlane::tick_at(double now_seconds) {
  const std::lock_guard lock(mutex_);
  if (!ticked_) {
    // First observation anchors the window; nothing to aggregate yet.
    ticked_ = true;
    last_tick_s_ = now_seconds;
    prev_query_ =
        LatencyHisto::get("serving_query_ns", "ns", "serving query latency")
            .snapshot();
    prev_errors_ = query_errors();
    return;
  }
  const double dt = now_seconds - last_tick_s_;
  if (dt < 1.0) return;
  last_tick_s_ = now_seconds;
  ++tick_index_;

  const LatencyHisto::Snapshot cur =
      LatencyHisto::get("serving_query_ns", "ns", "serving query latency")
          .snapshot();
  const LatencyHisto::Snapshot window = cur.delta_since(prev_query_);
  prev_query_ = cur;
  const std::uint64_t errors_now = query_errors();
  const std::uint64_t errors_delta = errors_now - prev_errors_;
  prev_errors_ = errors_now;

  const std::array<double, 5> point = {
      static_cast<double>(window.count) / dt,
      static_cast<double>(errors_delta) / dt,
      window.quantile(0.5) / 1e3,
      window.quantile(0.99) / 1e3,
      window.quantile(0.999) / 1e3,
  };
  per_second_.push(tick_index_, point);

  if (!slo_) return;
  for (const SloObjective& obj : slo_->objectives()) {
    if (obj.input != SloObjective::Input::kLatency) continue;
    const LatencyHisto::Snapshot snap =
        LatencyHisto::get(obj.histo_name, "ns", "serving stage latency")
            .snapshot();
    const auto transition =
        slo_->observe_histogram(obj.name, tick_index_, snap);
    if (!transition || !journal().recording()) continue;
    // Latency SLO transitions are wall-clock phenomena: kTiming, stamped
    // in completion order, never part of the drift-gated stream.
    journal().emit(MetricClass::kTiming,
                   transition->entered ? Severity::kWarn : Severity::kInfo,
                   transition->entered ? "slo.violation" : "slo.recovered",
                   transition->t,
                   {{"objective", transition->objective},
                    {"tick", transition->t},
                    {"burn_short_permille", transition->burn_short_permille},
                    {"burn_long_permille", transition->burn_long_permille}});
  }
}

void TelemetryPlane::note_round(std::uint64_t round, double coverage,
                                double completed, double active,
                                double probes, double echo_rate, double dirty,
                                double anycast, double round_ms) {
  const std::array<double, 8> point = {coverage, completed, active, probes,
                                       echo_rate, dirty,    anycast, round_ms};
  per_round_.push(round, point);
}

void TelemetryPlane::set_slo(std::vector<SloObjective> objectives) {
  set_slo(std::move(objectives), SloTracker::Config());
}

void TelemetryPlane::set_slo(std::vector<SloObjective> objectives,
                             SloTracker::Config config) {
  const std::lock_guard lock(mutex_);
  if (objectives.empty()) {
    slo_.reset();
  } else {
    slo_.emplace(std::move(objectives), config);
  }
}

bool TelemetryPlane::has_slo() const {
  const std::lock_guard lock(mutex_);
  return slo_.has_value();
}

std::optional<SloTracker::Transition> TelemetryPlane::observe_slo_ratio(
    std::string_view objective, std::uint64_t t, std::uint64_t good,
    std::uint64_t bad) {
  const std::lock_guard lock(mutex_);
  if (!slo_) return std::nullopt;
  return slo_->observe(objective, t, good, bad);
}

std::vector<SloTracker::State> TelemetryPlane::slo_states() const {
  const std::lock_guard lock(mutex_);
  if (!slo_) return {};
  return slo_->states();
}

std::string TelemetryPlane::document_json() const {
  std::string out = metrics().scrape_json();
  // scrape_json ends with "  ]\n}\n"; splice the telemetry sections in
  // before the closing brace so the `metrics` array keeps its exact shape.
  const std::size_t brace = out.rfind('}');
  if (brace != std::string::npos) out.erase(brace);
  while (!out.empty() && (out.back() == '\n' || out.back() == ' ')) {
    out.pop_back();
  }
  out += ",\n  \"latency\": ";
  out += latency_json();
  out += ",\n  \"series\": [\n    ";
  out += per_second_.to_json();
  out += ",\n    ";
  out += per_round_.to_json();
  out += "\n  ],\n  \"slo\": ";
  {
    const std::lock_guard lock(mutex_);
    out += slo_ ? slo_->to_json() : std::string("[]");
  }
  out += "\n}\n";
  return out;
}

std::string TelemetryPlane::document_prometheus() const {
  return metrics().scrape_prometheus() + latency_prometheus();
}

void TelemetryPlane::reset() {
  const std::lock_guard lock(mutex_);
  per_second_.clear();
  per_round_.clear();
  query_errors_.store(0, std::memory_order_relaxed);
  ticked_ = false;
  last_tick_s_ = 0.0;
  tick_index_ = 0;
  prev_query_ = {};
  prev_errors_ = 0;
  slo_.reset();
}

TelemetryPlane& telemetry() {
  static TelemetryPlane* global = new TelemetryPlane();
  return *global;
}

bool write_file_atomic(const std::filesystem::path& path,
                       std::string_view body) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) return false;
  const bool wrote =
      body.empty() ||
      std::fwrite(body.data(), 1, body.size(), file) == body.size();
  bool ok = wrote && std::fflush(file) == 0;
  if (ok) ok = ::fsync(::fileno(file)) == 0;
  if (std::fclose(file) != 0) ok = false;
  if (!ok) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

}  // namespace anycast::obs
