#include "anycast/obs/latency.hpp"

#include "anycast/obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace anycast::obs {
namespace {

std::atomic<bool> g_recording{true};

struct LatencyShard {
  // Heap-allocated per (thread, histogram); zeroed explicitly for the same
  // reason as the MetricsRegistry shards (see metrics.cpp).
  std::unique_ptr<std::atomic<std::uint64_t>[]> slots;
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
  LatencyShard() : slots(new std::atomic<std::uint64_t>[LatencyHisto::kSlots]) {
    for (std::uint32_t s = 0; s < LatencyHisto::kSlots; ++s) {
      slots[s].store(0, std::memory_order_relaxed);
    }
  }
};

std::uint64_t next_histo_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1);
}

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

}  // namespace

struct LatencyHisto::Impl {
  std::uint64_t id = 0;
  std::string name;
  std::string unit;
  std::string help;

  mutable std::mutex mutex;
  std::vector<std::unique_ptr<LatencyShard>> live;
  std::vector<std::uint64_t> retired;  // size kSlots
  std::uint64_t retired_count = 0;
  std::uint64_t retired_sum = 0;

  Impl() : retired(kSlots, 0) {}
};

namespace {

/// Live-histogram table: thread-exit retirement must not touch an instance
/// that was already destroyed (tests build short-lived ones), mirroring the
/// live-registry table in metrics.cpp.
std::mutex& live_histos_mutex() {
  static std::mutex m;
  return m;
}
std::unordered_map<std::uint64_t, LatencyHisto::Impl*>& live_histos() {
  static auto* map =
      new std::unordered_map<std::uint64_t, LatencyHisto::Impl*>();
  return *map;
}

struct HistoTlsEntry {
  std::uint64_t histo_id = 0;
  LatencyShard* shard = nullptr;
};

struct HistoTlsShards {
  std::vector<HistoTlsEntry> entries;
  ~HistoTlsShards() {
    const std::lock_guard live_lock(live_histos_mutex());
    for (const HistoTlsEntry& entry : entries) {
      const auto it = live_histos().find(entry.histo_id);
      if (it == live_histos().end()) continue;
      LatencyHisto::Impl* impl = it->second;
      const std::lock_guard lock(impl->mutex);
      for (std::uint32_t s = 0; s < LatencyHisto::kSlots; ++s) {
        impl->retired[s] +=
            entry.shard->slots[s].load(std::memory_order_relaxed);
      }
      impl->retired_count +=
          entry.shard->count.load(std::memory_order_relaxed);
      impl->retired_sum += entry.shard->sum.load(std::memory_order_relaxed);
      std::erase_if(impl->live,
                    [&](const std::unique_ptr<LatencyShard>& shard) {
                      return shard.get() == entry.shard;
                    });
    }
  }
};

thread_local HistoTlsShards g_histo_tls;

LatencyShard* histo_tls_shard_slow(LatencyHisto::Impl* impl) {
  auto shard = std::make_unique<LatencyShard>();
  LatencyShard* raw = shard.get();
  {
    const std::lock_guard lock(impl->mutex);
    impl->live.push_back(std::move(shard));
  }
  g_histo_tls.entries.push_back(HistoTlsEntry{impl->id, raw});
  return raw;
}

inline LatencyShard* histo_tls_shard(LatencyHisto::Impl* impl) {
  for (const HistoTlsEntry& entry : g_histo_tls.entries) {
    if (entry.histo_id == impl->id) return entry.shard;
  }
  return histo_tls_shard_slow(impl);
}

/// Global named-instance table, leaked like obs::metrics() so thread-exit
/// retirement never races static destruction. std::map keeps scrapes in
/// name order for free.
std::mutex& global_histos_mutex() {
  static std::mutex m;
  return m;
}
std::map<std::string, LatencyHisto*, std::less<>>& global_histos() {
  static auto* map = new std::map<std::string, LatencyHisto*, std::less<>>();
  return *map;
}

}  // namespace

LatencyHisto::LatencyHisto(std::string_view name, std::string_view unit,
                           std::string_view help)
    : impl_(new Impl()) {
  if (name.empty()) throw std::logic_error("latency histo name is empty");
  impl_->id = next_histo_id();
  impl_->name = std::string(name);
  impl_->unit = std::string(unit);
  impl_->help = std::string(help);
  const std::lock_guard lock(live_histos_mutex());
  live_histos().emplace(impl_->id, impl_);
}

LatencyHisto::~LatencyHisto() {
  {
    const std::lock_guard lock(live_histos_mutex());
    live_histos().erase(impl_->id);
  }
  delete impl_;
}

const std::string& LatencyHisto::name() const { return impl_->name; }
const std::string& LatencyHisto::unit() const { return impl_->unit; }

std::uint32_t LatencyHisto::slot_of(std::uint64_t value) {
  if (value > kMaxValue) value = kMaxValue;
  if (value < kSubCount) return static_cast<std::uint32_t>(value);
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - static_cast<int>(kSubBits);
  const auto octave = static_cast<std::uint32_t>(shift + 1);
  const auto sub =
      static_cast<std::uint32_t>((value >> shift) & (kSubCount - 1));
  return octave * static_cast<std::uint32_t>(kSubCount) + sub;
}

std::uint64_t LatencyHisto::slot_lower(std::uint32_t slot) {
  const std::uint32_t octave = slot >> kSubBits;
  if (octave == 0) return slot;
  const std::uint64_t sub = slot & (kSubCount - 1);
  return (kSubCount + sub) << (octave - 1);
}

std::uint64_t LatencyHisto::slot_upper(std::uint32_t slot) {
  const std::uint32_t octave = slot >> kSubBits;
  if (octave == 0) return static_cast<std::uint64_t>(slot) + 1;
  return slot_lower(slot) + (1ull << (octave - 1));
}

void LatencyHisto::record(std::uint64_t value) {
  if (!g_recording.load(std::memory_order_relaxed)) return;
  if (value > kMaxValue) value = kMaxValue;
  LatencyShard* shard = histo_tls_shard(impl_);
  shard->slots[slot_of(value)].fetch_add(1, std::memory_order_relaxed);
  shard->count.fetch_add(1, std::memory_order_relaxed);
  shard->sum.fetch_add(value, std::memory_order_relaxed);
}

LatencyHisto::Snapshot LatencyHisto::snapshot() const {
  const std::lock_guard lock(impl_->mutex);
  Snapshot snap;
  snap.name = impl_->name;
  snap.unit = impl_->unit;
  snap.help = impl_->help;
  snap.count = impl_->retired_count;
  snap.sum = impl_->retired_sum;
  for (const auto& shard : impl_->live) {
    snap.count += shard->count.load(std::memory_order_relaxed);
    snap.sum += shard->sum.load(std::memory_order_relaxed);
  }
  if (snap.count == 0) return snap;
  snap.counts.assign(kSlots, 0);
  for (std::uint32_t s = 0; s < kSlots; ++s) snap.counts[s] = impl_->retired[s];
  for (const auto& shard : impl_->live) {
    for (std::uint32_t s = 0; s < kSlots; ++s) {
      snap.counts[s] += shard->slots[s].load(std::memory_order_relaxed);
    }
  }
  return snap;
}

void LatencyHisto::reset() {
  const std::lock_guard lock(impl_->mutex);
  std::fill(impl_->retired.begin(), impl_->retired.end(), 0);
  impl_->retired_count = 0;
  impl_->retired_sum = 0;
  for (const auto& shard : impl_->live) {
    for (std::uint32_t s = 0; s < kSlots; ++s) {
      shard->slots[s].store(0, std::memory_order_relaxed);
    }
    shard->count.store(0, std::memory_order_relaxed);
    shard->sum.store(0, std::memory_order_relaxed);
  }
}

double LatencyHisto::Snapshot::quantile(double q) const {
  if (count == 0 || counts.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  rank = std::clamp<std::uint64_t>(rank, 1, count);
  std::uint64_t seen = 0;
  for (std::uint32_t s = 0; s < counts.size(); ++s) {
    seen += counts[s];
    if (seen >= rank) {
      return static_cast<double>(LatencyHisto::slot_upper(s) - 1);
    }
  }
  return static_cast<double>(LatencyHisto::kMaxValue);
}

std::uint64_t LatencyHisto::Snapshot::min() const {
  for (std::uint32_t s = 0; s < counts.size(); ++s) {
    if (counts[s] != 0) return LatencyHisto::slot_lower(s);
  }
  return 0;
}

std::uint64_t LatencyHisto::Snapshot::max() const {
  for (std::uint32_t s = static_cast<std::uint32_t>(counts.size()); s-- > 0;) {
    if (counts[s] != 0) return LatencyHisto::slot_upper(s) - 1;
  }
  return 0;
}

std::uint64_t LatencyHisto::Snapshot::count_above(
    std::uint64_t threshold) const {
  std::uint64_t above = 0;
  for (std::uint32_t s = 0; s < counts.size(); ++s) {
    if (counts[s] != 0 && LatencyHisto::slot_lower(s) > threshold) {
      above += counts[s];
    }
  }
  return above;
}

LatencyHisto::Snapshot LatencyHisto::Snapshot::delta_since(
    const Snapshot& prev) const {
  Snapshot out;
  out.name = name;
  out.unit = unit;
  out.help = help;
  out.count = count - std::min(count, prev.count);
  out.sum = sum - std::min(sum, prev.sum);
  if (out.count == 0) return out;
  out.counts.assign(LatencyHisto::kSlots, 0);
  for (std::uint32_t s = 0; s < LatencyHisto::kSlots; ++s) {
    const std::uint64_t cur = s < counts.size() ? counts[s] : 0;
    const std::uint64_t old = s < prev.counts.size() ? prev.counts[s] : 0;
    out.counts[s] = cur - std::min(cur, old);
  }
  return out;
}

LatencyHisto& LatencyHisto::get(std::string_view name, std::string_view unit,
                                std::string_view help) {
  const std::lock_guard lock(global_histos_mutex());
  auto& table = global_histos();
  const auto it = table.find(name);
  if (it != table.end()) return *it->second;
  auto* histo = new LatencyHisto(name, unit, help);  // leaked by design
  table.emplace(std::string(name), histo);
  return *histo;
}

void set_latency_recording(bool enabled) {
  g_recording.store(enabled, std::memory_order_relaxed);
}

bool latency_recording() {
  return g_recording.load(std::memory_order_relaxed);
}

std::vector<LatencyHisto::Snapshot> latency_snapshots() {
  std::vector<LatencyHisto*> histos;
  {
    const std::lock_guard lock(global_histos_mutex());
    for (const auto& [name, histo] : global_histos()) histos.push_back(histo);
  }
  std::vector<LatencyHisto::Snapshot> out;
  out.reserve(histos.size());
  for (LatencyHisto* histo : histos) out.push_back(histo->snapshot());
  return out;
}

void latency_reset_all() {
  std::vector<LatencyHisto*> histos;
  {
    const std::lock_guard lock(global_histos_mutex());
    for (const auto& [name, histo] : global_histos()) histos.push_back(histo);
  }
  for (LatencyHisto* histo : histos) histo->reset();
}

std::string latency_prometheus() {
  std::string out;
  for (const LatencyHisto::Snapshot& snap : latency_snapshots()) {
    if (!snap.help.empty()) {
      out += "# HELP " + snap.name + " " + prometheus_escape_help(snap.help) +
             "\n";
    }
    out += "# TYPE " + snap.name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::uint32_t s = 0; s < snap.counts.size(); ++s) {
      if (snap.counts[s] == 0) continue;
      cumulative += snap.counts[s];
      out += snap.name + "_bucket{le=\"" +
             format_double(static_cast<double>(LatencyHisto::slot_upper(s))) +
             "\"} " + std::to_string(cumulative) + "\n";
    }
    out += snap.name + "_bucket{le=\"+Inf\"} " + std::to_string(snap.count) +
           "\n";
    out += snap.name + "_sum " + std::to_string(snap.sum) + "\n";
    out += snap.name + "_count " + std::to_string(snap.count) + "\n";
  }
  return out;
}

std::string latency_json() {
  std::string out = "[\n";
  const std::vector<LatencyHisto::Snapshot> snaps = latency_snapshots();
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    const LatencyHisto::Snapshot& s = snaps[i];
    char line[512];
    std::snprintf(line, sizeof line,
                  "    {\"name\": \"%s\", \"unit\": \"%s\", \"count\": %llu, "
                  "\"sum\": %llu, \"min\": %llu, \"max\": %llu, "
                  "\"p50\": %.1f, \"p90\": %.1f, \"p99\": %.1f, "
                  "\"p999\": %.1f}",
                  s.name.c_str(), s.unit.c_str(),
                  static_cast<unsigned long long>(s.count),
                  static_cast<unsigned long long>(s.sum),
                  static_cast<unsigned long long>(s.min()),
                  static_cast<unsigned long long>(s.max()), s.quantile(0.5),
                  s.quantile(0.9), s.quantile(0.99), s.quantile(0.999));
    out += line;
    out += i + 1 < snaps.size() ? ",\n" : "\n";
  }
  out += "  ]";
  return out;
}

}  // namespace anycast::obs
