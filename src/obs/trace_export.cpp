#include "anycast/obs/trace_export.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace anycast::obs {
namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      out += "\\n";
      continue;
    }
    out += c;
  }
}

void append_number(std::string& out, const char* format, double value) {
  char tmp[64];
  const int n = std::snprintf(tmp, sizeof tmp, format, value);
  if (n > 0) out.append(tmp, static_cast<std::size_t>(n));
}

}  // namespace

struct CounterSampler::Impl {
  mutable std::mutex mutex;
  std::vector<CounterSample> samples;
  std::size_t capacity = 65536;
  std::size_t dropped = 0;
};

CounterSampler::CounterSampler() : impl_(new Impl()) {}
CounterSampler::~CounterSampler() { delete impl_; }

void CounterSampler::sample(const MetricsRegistry& registry,
                            std::int64_t t_ns) {
  const std::vector<MetricValue> values = registry.scrape();
  const std::lock_guard lock(impl_->mutex);
  for (const MetricValue& v : values) {
    if (impl_->samples.size() >= impl_->capacity) {
      ++impl_->dropped;
      continue;
    }
    CounterSample sample;
    sample.t_ns = t_ns;
    sample.name = v.name;
    switch (v.kind) {
      case MetricKind::kCounter:
        sample.value = static_cast<double>(v.value);
        break;
      case MetricKind::kGauge:
        sample.value = v.gauge;
        break;
      case MetricKind::kHistogram:
        sample.value = static_cast<double>(v.count);
        break;
    }
    impl_->samples.push_back(std::move(sample));
  }
}

void CounterSampler::sample_now() {
  sample(metrics(), steady_ns() - trace().epoch_ns());
}

std::vector<CounterSample> CounterSampler::samples() const {
  const std::lock_guard lock(impl_->mutex);
  return impl_->samples;
}

std::size_t CounterSampler::dropped() const {
  const std::lock_guard lock(impl_->mutex);
  return impl_->dropped;
}

void CounterSampler::set_capacity(std::size_t capacity) {
  const std::lock_guard lock(impl_->mutex);
  impl_->capacity = capacity;
}

void CounterSampler::reset() {
  const std::lock_guard lock(impl_->mutex);
  impl_->samples.clear();
  impl_->dropped = 0;
}

CounterSampler& counter_sampler() {
  // Leaked on purpose, same reasoning as obs::metrics().
  static CounterSampler* global = new CounterSampler();
  return *global;
}

std::string chrome_trace_json(const std::vector<SpanRecord>& spans,
                              const std::vector<CounterSample>& samples,
                              std::size_t dropped_spans,
                              std::size_t orphan_spans) {
  std::vector<SpanRecord> ordered = spans;
  std::sort(ordered.begin(), ordered.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.id < b.id;
            });
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto comma = [&out, &first] {
    if (!first) out += ",";
    first = false;
  };
  char tmp[160];
  for (const SpanRecord& r : ordered) {
    // Async begin/end pair keyed by span id: async tracks tolerate the
    // overlapping lifetimes parallel sibling walks produce.
    for (const bool begin : {true, false}) {
      comma();
      out += "\n{\"ph\":\"";
      out += begin ? 'b' : 'e';
      out += "\",\"cat\":\"anycast\",\"id\":";
      std::snprintf(tmp, sizeof tmp, "%u", r.id);
      out += tmp;
      out += ",\"name\":\"";
      append_escaped(out, r.name);
      if (r.label != 0) {
        std::snprintf(tmp, sizeof tmp, "[%llu]",
                      static_cast<unsigned long long>(r.label));
        out += tmp;
      }
      out += "\",\"pid\":1,\"tid\":1,\"ts\":";
      const std::int64_t at_ns =
          begin ? r.start_ns : r.start_ns + r.duration_ns;
      append_number(out, "%.3f", static_cast<double>(at_ns) / 1e3);
      if (begin) {
        out += ",\"args\":{\"parent\":";
        std::snprintf(tmp, sizeof tmp, "%u", r.parent);
        out += tmp;
        out += ",\"adopted\":";
        out += r.adopted ? "true" : "false";
        out += "}";
      }
      out += "}";
    }
  }
  for (const CounterSample& s : samples) {
    comma();
    out += "\n{\"ph\":\"C\",\"name\":\"";
    append_escaped(out, s.name);
    out += "\",\"pid\":1,\"ts\":";
    append_number(out, "%.3f", static_cast<double>(s.t_ns) / 1e3);
    out += ",\"args\":{\"value\":";
    append_number(out, "%.17g", s.value);
    out += "}}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{";
  std::snprintf(tmp, sizeof tmp,
                "\"dropped_spans\":%zu,\"orphan_spans\":%zu,"
                "\"counter_samples\":%zu",
                dropped_spans, orphan_spans, samples.size());
  out += tmp;
  out += "}}\n";
  return out;
}

bool write_chrome_trace(const std::filesystem::path& path) {
  counter_sampler().sample_now();
  const std::string json =
      chrome_trace_json(trace().finished(), counter_sampler().samples(),
                        trace().dropped(), trace().orphans());
  std::FILE* file = std::fopen(path.string().c_str(), "wb");
  if (file == nullptr) return false;
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  return true;
}

}  // namespace anycast::obs
