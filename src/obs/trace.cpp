#include "anycast/obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <unordered_map>

namespace anycast::obs {
namespace {

// Per-thread stack of open span ids. The global collector is the only
// span sink, so one stack per thread suffices.
thread_local std::vector<std::uint32_t> g_open_spans;

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

struct TraceCollector::Impl {
  mutable std::mutex mutex;
  std::vector<SpanRecord> records;
  std::size_t capacity = 16384;
  std::size_t dropped = 0;
  std::size_t orphans = 0;
  std::int64_t epoch_ns = steady_ns();
  std::atomic<std::uint32_t> next_id{1};
  std::atomic<std::uint32_t> adoption_point{0};
};

TraceCollector::TraceCollector() : impl_(new Impl()) {}
TraceCollector::~TraceCollector() { delete impl_; }

std::vector<SpanRecord> TraceCollector::finished() const {
  const std::lock_guard lock(impl_->mutex);
  return impl_->records;
}

std::size_t TraceCollector::dropped() const {
  const std::lock_guard lock(impl_->mutex);
  return impl_->dropped;
}

std::size_t TraceCollector::orphans() const {
  const std::lock_guard lock(impl_->mutex);
  return impl_->orphans;
}

std::int64_t TraceCollector::epoch_ns() const {
  const std::lock_guard lock(impl_->mutex);
  return impl_->epoch_ns;
}

void TraceCollector::set_capacity(std::size_t capacity) {
  const std::lock_guard lock(impl_->mutex);
  impl_->capacity = capacity;
}

void TraceCollector::reset() {
  const std::lock_guard lock(impl_->mutex);
  impl_->records.clear();
  impl_->dropped = 0;
  impl_->orphans = 0;
  impl_->epoch_ns = steady_ns();
  impl_->next_id.store(1, std::memory_order_relaxed);
  impl_->adoption_point.store(0, std::memory_order_relaxed);
}

std::string TraceCollector::spans_json() const {
  std::vector<SpanRecord> records = finished();
  std::sort(records.begin(), records.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.id < b.id;
            });
  std::string out = "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const SpanRecord& r = records[i];
    char line[256];
    std::snprintf(line, sizeof line,
                  "  {\"id\": %u, \"parent\": %u, \"name\": \"%s\", "
                  "\"label\": %llu, \"start_ns\": %lld, \"duration_ns\": "
                  "%lld, \"adopted\": %s}",
                  r.id, r.parent, r.name.c_str(),
                  static_cast<unsigned long long>(r.label),
                  static_cast<long long>(r.start_ns),
                  static_cast<long long>(r.duration_ns),
                  r.adopted ? "true" : "false");
    out += line;
    if (i + 1 < records.size()) out += ",";
    out += "\n";
  }
  out += "]\n";
  return out;
}

std::string TraceCollector::render_tree(std::size_t max_spans) const {
  std::size_t dropped = 0;
  std::size_t orphans = 0;
  std::vector<SpanRecord> records;
  {
    const std::lock_guard lock(impl_->mutex);
    records = impl_->records;
    dropped = impl_->dropped;
    orphans = impl_->orphans;
    if (max_spans == 0) max_spans = impl_->capacity;
  }
  std::sort(records.begin(), records.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.id < b.id;
            });
  // Children lists by record position + 1; roots (and spans whose parent
  // record was dropped) render at depth 0.
  std::vector<std::vector<std::size_t>> children(records.size() + 1);
  std::unordered_map<std::uint32_t, std::size_t> index_by_id;
  index_by_id.reserve(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    index_by_id.emplace(records[i].id, i);
  }
  std::string out;
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const std::uint32_t parent = records[i].parent;
    const auto it = parent != 0 ? index_by_id.find(parent)
                                : index_by_id.end();
    if (it != index_by_id.end()) {
      children[it->second + 1].push_back(i);
    } else {
      roots.push_back(i);
    }
  }
  struct Frame {
    std::size_t index;
    int depth;
  };
  std::vector<Frame> stack;
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.push_back(Frame{*it, 0});
  }
  std::size_t shown = 0;
  while (!stack.empty() && shown < max_spans) {
    const Frame frame = stack.back();
    stack.pop_back();
    const SpanRecord& r = records[frame.index];
    ++shown;
    char line[256];
    std::snprintf(line, sizeof line, "%*s%s", frame.depth * 2, "",
                  r.name.c_str());
    out += line;
    if (r.label != 0) {
      std::snprintf(line, sizeof line, "[%llu]",
                    static_cast<unsigned long long>(r.label));
      out += line;
    }
    std::snprintf(line, sizeof line, "  %.3f ms%s\n",
                  static_cast<double>(r.duration_ns) / 1e6,
                  r.adopted ? "  (adopted)" : "");
    out += line;
    const auto& kids = children[frame.index + 1];
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back(Frame{*it, frame.depth + 1});
    }
  }
  const std::size_t omitted = records.size() - shown;
  if (omitted > 0 || dropped > 0 || orphans > 0) {
    char line[160];
    std::snprintf(line, sizeof line,
                  "... %zu spans shown, %zu omitted, %zu dropped at "
                  "capacity, %zu orphaned\n",
                  shown, omitted, dropped, orphans);
    out += line;
  }
  return out;
}

Span::Span(std::string_view name, std::uint64_t label) : label_(label) {
  TraceCollector::Impl* impl = trace().impl_;
  id_ = impl->next_id.fetch_add(1, std::memory_order_relaxed);
  if (!g_open_spans.empty()) {
    parent_ = g_open_spans.back();
  } else {
    parent_ = impl->adoption_point.load(std::memory_order_relaxed);
    adopted_ = parent_ != 0;
  }
  const std::size_t n = std::min(name.size(), sizeof name_ - 1);
  std::memcpy(name_, name.data(), n);
  g_open_spans.push_back(id_);
  start_ns_ = steady_ns();
}

Span::Span(Root, std::string_view name, std::uint64_t label)
    : Span(name, label) {
  is_root_ = true;
  TraceCollector::Impl* impl = trace().impl_;
  restore_adoption_ =
      impl->adoption_point.exchange(id_, std::memory_order_relaxed);
}

Span::~Span() {
  const std::int64_t end_ns = steady_ns();
  TraceCollector::Impl* impl = trace().impl_;
  if (is_root_) {
    impl->adoption_point.store(restore_adoption_,
                               std::memory_order_relaxed);
  }
  // Natural RAII scoping makes this span the innermost open one; tolerate
  // misuse by searching.
  if (!g_open_spans.empty() && g_open_spans.back() == id_) {
    g_open_spans.pop_back();
  } else {
    std::erase(g_open_spans, id_);
  }
  const std::lock_guard lock(impl->mutex);
  if (parent_ == 0 && !adopted_ && !is_root_) ++impl->orphans;
  if (impl->records.size() >= impl->capacity) {
    ++impl->dropped;
    return;
  }
  SpanRecord record;
  record.id = id_;
  record.parent = parent_;
  record.name = name_;
  record.label = label_;
  record.start_ns = start_ns_ - impl->epoch_ns;
  record.duration_ns = end_ns - start_ns_;
  record.adopted = adopted_;
  impl->records.push_back(std::move(record));
}

TraceCollector& trace() {
  // Leaked on purpose, same reasoning as obs::metrics().
  static TraceCollector* global = new TraceCollector();
  return *global;
}

}  // namespace anycast::obs
