#include "anycast/obs/slo.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace anycast::obs {
namespace {

/// Operational SLO telemetry. kTiming: violation counts depend on wall
/// clock (latency objectives) and configuration, never on census
/// semantics, so they stay out of pinned semantic snapshots.
struct SloInstruments {
  Counter violations = metrics().counter(
      "slo_violations", MetricClass::kTiming,
      "SLO objectives entering the violating state");
  Counter recoveries = metrics().counter(
      "slo_recoveries", MetricClass::kTiming,
      "SLO objectives leaving the violating state");
  Gauge worst_burn = metrics().gauge(
      "slo_worst_burn_permille", MetricClass::kTiming,
      "Highest short-window burn rate across objectives, in permille");
};

const SloInstruments& slo_instruments() {
  static const SloInstruments instruments;
  return instruments;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

bool parse_double(std::string_view text, double* out) {
  if (text.empty()) return false;
  char buffer[64];
  if (text.size() >= sizeof buffer) return false;
  std::copy(text.begin(), text.end(), buffer);
  buffer[text.size()] = '\0';
  char* end = nullptr;
  const double value = std::strtod(buffer, &end);
  if (end != buffer + text.size()) return false;
  *out = value;
  return true;
}

bool valid_stage(std::string_view stage) {
  return stage == "parse" || stage == "lookup" || stage == "nearest" ||
         stage == "diff" || stage == "query";
}

bool parse_latency_key(std::string_view key, SloObjective* obj,
                       std::string* error) {
  // p<digits>_<stage>_<us|ms>
  std::string_view rest = key.substr(1);
  const std::size_t first_us = rest.find('_');
  const std::size_t last_us = rest.rfind('_');
  if (first_us == std::string_view::npos || first_us == last_us) {
    *error = "latency objective must be p<q>_<stage>_<unit>: " +
             std::string(key);
    return false;
  }
  const std::string_view digits = rest.substr(0, first_us);
  const std::string_view stage = rest.substr(first_us + 1,
                                             last_us - first_us - 1);
  const std::string_view unit = rest.substr(last_us + 1);
  if (digits.empty() ||
      !std::all_of(digits.begin(), digits.end(),
                   [](char c) { return c >= '0' && c <= '9'; })) {
    *error = "bad quantile in SLO objective: " + std::string(key);
    return false;
  }
  double q = 0.0;
  double scale = 0.1;
  for (const char c : digits) {
    q += static_cast<double>(c - '0') * scale;
    scale *= 0.1;
  }
  if (q <= 0.0 || q >= 1.0) {
    *error = "quantile out of range in SLO objective: " + std::string(key);
    return false;
  }
  if (!valid_stage(stage)) {
    *error = "unknown stage in SLO objective (want parse|lookup|nearest|"
             "diff|query): " + std::string(key);
    return false;
  }
  if (unit != "us" && unit != "ms") {
    *error = "unknown unit in SLO objective (want us|ms): " + std::string(key);
    return false;
  }
  obj->input = SloObjective::Input::kLatency;
  obj->cls = MetricClass::kTiming;
  obj->quantile = q;
  obj->budget = 1.0 - q;
  obj->stage = std::string(stage);
  obj->histo_name = "serving_" + obj->stage + "_ns";
  const double unit_ns = unit == "us" ? 1e3 : 1e6;
  obj->threshold_ns =
      static_cast<std::uint64_t>(std::llround(obj->threshold * unit_ns));
  return true;
}

std::uint64_t burn_permille(double bad_fraction_mean, double budget) {
  if (budget <= 0.0) return 0;
  const double burn = bad_fraction_mean / budget;
  return static_cast<std::uint64_t>(std::llround(burn * 1000.0));
}

}  // namespace

std::optional<std::vector<SloObjective>> parse_slo_spec(
    std::string_view spec, std::string* error) {
  std::vector<SloObjective> out;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view entry = trim(rest.substr(0, comma));
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      if (error) *error = "SLO objective missing '=': " + std::string(entry);
      return std::nullopt;
    }
    const std::string_view key = trim(entry.substr(0, eq));
    const std::string_view value = trim(entry.substr(eq + 1));
    SloObjective obj;
    obj.name = std::string(key);
    std::string local_error;
    if (!parse_double(value, &obj.threshold)) {
      if (error) *error = "bad SLO value: " + std::string(entry);
      return std::nullopt;
    }
    if (key == "availability") {
      if (obj.threshold <= 0.0 || obj.threshold >= 1.0) {
        if (error) {
          *error = "availability objective must be in (0,1): " +
                   std::string(entry);
        }
        return std::nullopt;
      }
      obj.input = SloObjective::Input::kRatio;
      obj.cls = MetricClass::kSemantic;
      obj.budget = 1.0 - obj.threshold;
    } else if (!key.empty() && key.front() == 'p') {
      if (obj.threshold <= 0.0) {
        if (error) {
          *error = "latency bound must be positive: " + std::string(entry);
        }
        return std::nullopt;
      }
      if (!parse_latency_key(key, &obj, &local_error)) {
        if (error) *error = local_error;
        return std::nullopt;
      }
    } else {
      if (error) *error = "unknown SLO objective: " + std::string(key);
      return std::nullopt;
    }
    out.push_back(std::move(obj));
  }
  return out;
}

SloTracker::SloTracker(std::vector<SloObjective> objectives)
    : SloTracker(std::move(objectives), Config()) {}

SloTracker::SloTracker(std::vector<SloObjective> objectives, Config config)
    : objectives_(std::move(objectives)), config_(config) {
  config_.short_window = std::max<std::size_t>(1, config_.short_window);
  config_.long_window = std::max(config_.short_window, config_.long_window);
  tracks_.resize(objectives_.size());
  for (Track& track : tracks_) {
    track.recent.reserve(config_.long_window);
  }
  (void)slo_instruments();  // register the telemetry metrics up front
}

std::optional<SloTracker::Transition> SloTracker::push_window(
    std::size_t index, std::uint64_t t, std::uint64_t good,
    std::uint64_t bad) {
  Track& track = tracks_[index];
  const Window window{good, bad};
  if (track.recent.size() < config_.long_window) {
    track.recent.push_back(window);
    track.next = track.recent.size() % config_.long_window;
  } else {
    track.recent[track.next] = window;
    track.next = (track.next + 1) % config_.long_window;
  }
  ++track.windows;

  // Mean bad fraction over the most recent k windows (newest first from
  // `next`), over however many windows exist so early rounds still burn.
  const auto mean_fraction = [&](std::size_t k) {
    const std::size_t have = track.recent.size();
    const std::size_t take = std::min(k, have);
    double total = 0.0;
    for (std::size_t i = 0; i < take; ++i) {
      const std::size_t pos =
          (track.next + have - 1 - i) % have;
      const Window& w = track.recent[pos];
      const std::uint64_t events = w.good + w.bad;
      if (events != 0) {
        total += static_cast<double>(w.bad) / static_cast<double>(events);
      }
    }
    return take == 0 ? 0.0 : total / static_cast<double>(take);
  };

  const double budget = objectives_[index].budget;
  track.burn_short_permille =
      burn_permille(mean_fraction(config_.short_window), budget);
  track.burn_long_permille =
      burn_permille(mean_fraction(config_.long_window), budget);

  const bool violating =
      static_cast<double>(track.burn_short_permille) >=
          config_.burn_threshold * 1000.0 &&
      track.burn_long_permille >= 1000;

  std::optional<Transition> transition;
  if (violating != track.violating) {
    track.violating = violating;
    if (violating) {
      ++track.violations;
      slo_instruments().violations.inc();
    } else {
      slo_instruments().recoveries.inc();
    }
    transition = Transition{objectives_[index].name, violating, t,
                            track.burn_short_permille,
                            track.burn_long_permille};
  }
  refresh_worst_burn();
  return transition;
}

void SloTracker::refresh_worst_burn() const {
  std::uint64_t worst = 0;
  for (const Track& track : tracks_) {
    worst = std::max(worst, track.burn_short_permille);
  }
  slo_instruments().worst_burn.set(static_cast<double>(worst));
}

std::optional<SloTracker::Transition> SloTracker::observe(
    std::string_view objective, std::uint64_t t, std::uint64_t good,
    std::uint64_t bad) {
  for (std::size_t i = 0; i < objectives_.size(); ++i) {
    if (objectives_[i].name == objective) return push_window(i, t, good, bad);
  }
  return std::nullopt;
}

std::optional<SloTracker::Transition> SloTracker::observe_histogram(
    std::string_view objective, std::uint64_t t,
    const LatencyHisto::Snapshot& cumulative) {
  for (std::size_t i = 0; i < objectives_.size(); ++i) {
    if (objectives_[i].name != objective) continue;
    const SloObjective& obj = objectives_[i];
    if (obj.input != SloObjective::Input::kLatency) return std::nullopt;
    const LatencyHisto::Snapshot window =
        cumulative.delta_since(tracks_[i].prev);
    tracks_[i].prev = cumulative;
    const std::uint64_t bad = window.count_above(obj.threshold_ns);
    const std::uint64_t good = window.count - std::min(window.count, bad);
    return push_window(i, t, good, bad);
  }
  return std::nullopt;
}

std::vector<SloTracker::State> SloTracker::states() const {
  std::vector<State> out;
  out.reserve(objectives_.size());
  for (std::size_t i = 0; i < objectives_.size(); ++i) {
    State state;
    state.objective = objectives_[i];
    state.windows = tracks_[i].windows;
    state.violations = tracks_[i].violations;
    state.burn_short_permille = tracks_[i].burn_short_permille;
    state.burn_long_permille = tracks_[i].burn_long_permille;
    state.violating = tracks_[i].violating;
    out.push_back(std::move(state));
  }
  return out;
}

std::string SloTracker::to_json() const {
  std::string out = "[\n";
  const std::vector<State> all = states();
  for (std::size_t i = 0; i < all.size(); ++i) {
    const State& s = all[i];
    char line[512];
    std::snprintf(
        line, sizeof line,
        "    {\"objective\": \"%s\", \"threshold\": %.6g, "
        "\"budget\": %.6g, \"windows\": %llu, \"violations\": %llu, "
        "\"burn_short_permille\": %llu, \"burn_long_permille\": %llu, "
        "\"violating\": %s}",
        s.objective.name.c_str(), s.objective.threshold, s.objective.budget,
        static_cast<unsigned long long>(s.windows),
        static_cast<unsigned long long>(s.violations),
        static_cast<unsigned long long>(s.burn_short_permille),
        static_cast<unsigned long long>(s.burn_long_permille),
        s.violating ? "true" : "false");
    out += line;
    out += i + 1 < all.size() ? ",\n" : "\n";
  }
  out += "  ]";
  return out;
}

}  // namespace anycast::obs
