#include "anycast/obs/timeseries.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace anycast::obs {
namespace {

std::string format_series_value(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.6g", value);
  return buffer;
}

}  // namespace

TimeSeries::TimeSeries(std::string name, std::vector<std::string> fields,
                       std::size_t capacity)
    : name_(std::move(name)), fields_(std::move(fields)), capacity_(capacity) {
  if (capacity_ == 0) throw std::logic_error("time series capacity is zero");
  if (fields_.empty()) throw std::logic_error("time series has no fields");
}

void TimeSeries::push(std::uint64_t t, std::span<const double> values) {
  Point point;
  point.t = t;
  point.v.assign(fields_.size(), 0.0);
  const std::size_t n = std::min(values.size(), fields_.size());
  for (std::size_t i = 0; i < n; ++i) point.v[i] = values[i];

  const std::lock_guard lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(point));
    next_ = ring_.size() % capacity_;
  } else {
    ring_[next_] = std::move(point);
    next_ = (next_ + 1) % capacity_;
  }
  ++pushed_;
}

std::vector<TimeSeries::Point> TimeSeries::window(std::size_t n) const {
  const std::lock_guard lock(mutex_);
  const std::size_t have = ring_.size();
  const std::size_t want = std::min(n, have);
  std::vector<Point> out;
  out.reserve(want);
  // Oldest element sits at next_ once the ring is full, at 0 before that.
  const std::size_t oldest = have < capacity_ ? 0 : next_;
  for (std::size_t i = have - want; i < have; ++i) {
    out.push_back(ring_[(oldest + i) % have]);
  }
  return out;
}

TimeSeries::FieldStats TimeSeries::stats(std::size_t field,
                                         std::size_t last_n) const {
  FieldStats stats;
  if (field >= fields_.size()) return stats;
  const std::vector<Point> points = window(last_n);
  if (points.empty()) return stats;
  stats.n = points.size();
  stats.min = stats.max = points.front().v[field];
  double total = 0.0;
  for (const Point& p : points) {
    const double v = p.v[field];
    stats.min = std::min(stats.min, v);
    stats.max = std::max(stats.max, v);
    total += v;
  }
  stats.last = points.back().v[field];
  stats.mean = total / static_cast<double>(points.size());
  return stats;
}

std::size_t TimeSeries::size() const {
  const std::lock_guard lock(mutex_);
  return ring_.size();
}

std::uint64_t TimeSeries::total_pushed() const {
  const std::lock_guard lock(mutex_);
  return pushed_;
}

void TimeSeries::clear() {
  const std::lock_guard lock(mutex_);
  ring_.clear();
  next_ = 0;
  pushed_ = 0;
}

std::string TimeSeries::to_json() const {
  const std::vector<Point> points = window();
  std::string out = "{\"name\": \"" + name_ + "\", \"t\": [";
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(points[i].t);
  }
  out += "], \"fields\": {";
  for (std::size_t f = 0; f < fields_.size(); ++f) {
    if (f != 0) out += ", ";
    out += "\"" + fields_[f] + "\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (i != 0) out += ", ";
      out += format_series_value(points[i].v[f]);
    }
    out += "]";
  }
  out += "}}";
  return out;
}

}  // namespace anycast::obs
