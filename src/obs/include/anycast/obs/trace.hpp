// Observability: lightweight trace spans for the census pipeline.
//
// A span is a named, steady-clock-timed interval (a census phase, one VP's
// walk, one analysis shard). Spans form a run tree: each span's parent is
// the innermost span open on the *same thread* at construction time; a
// span created on a worker thread with nothing open locally is *adopted*
// by the current adoption point — the span the coordinating thread marked
// (with Span::Root) before fanning work out. Spans with no local parent
// and no adoption point are orphans: they parent to id 0 and are counted,
// never lost silently.
//
// Recording is intentionally not hot-path-grade: a span *end* takes one
// short mutex-protected append (span granularity is per-VP / per-phase,
// thousands per run, not per-probe, millions). The collector caps its
// record buffer and counts drops rather than growing unbounded.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace anycast::obs {

/// One finished span. `start_ns` is relative to the collector's epoch
/// (construction or last reset), so records are comparable within a run.
struct SpanRecord {
  std::uint32_t id = 0;
  std::uint32_t parent = 0;  // 0 = root/orphan
  std::string name;
  std::uint64_t label = 0;  // caller-chosen (VP index, shard number, ...)
  std::int64_t start_ns = 0;
  std::int64_t duration_ns = 0;
  bool adopted = false;  // parented via the adoption point, not nesting
};

class TraceCollector {
 public:
  TraceCollector();
  ~TraceCollector();
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Finished spans in completion order.
  [[nodiscard]] std::vector<SpanRecord> finished() const;

  /// Spans discarded because the buffer was full.
  [[nodiscard]] std::size_t dropped() const;

  /// Orphan spans recorded (no local parent, no adoption point).
  [[nodiscard]] std::size_t orphans() const;

  /// JSON export: an array of span objects sorted by id.
  [[nodiscard]] std::string spans_json() const;

  /// Indented text rendering of the span tree (for --verbose). Shows at
  /// most `max_spans` spans (0 = the collector's capacity limit) and ends
  /// with a summary footer whenever spans were omitted, dropped, or
  /// orphaned — never a silent mid-tree cut.
  [[nodiscard]] std::string render_tree(std::size_t max_spans = 0) const;

  /// The steady-clock instant all SpanRecord::start_ns values are
  /// relative to (collector construction or last reset). Exporters use it
  /// to place samples from other sources on the same timeline.
  [[nodiscard]] std::int64_t epoch_ns() const;

  /// Max finished spans retained before drops begin. Default 16384.
  void set_capacity(std::size_t capacity);

  /// Clears records, drop/orphan counts, the adoption point, and the id
  /// counter, and re-epochs the clock. Call only while no span is open.
  void reset();

 private:
  friend class Span;
  struct Impl;
  Impl* impl_;  // raw: the global collector is intentionally leaked
};

/// RAII span. Construct to open, destroy to record. Spans must be
/// destroyed in reverse construction order per thread (natural with
/// scoping). Not copyable or movable.
class Span {
 public:
  /// Tag: this span becomes the adoption point while it lives — spans
  /// opened on other threads with no local parent attach under it.
  enum class Root : std::uint8_t { kAdoptionPoint };

  explicit Span(std::string_view name, std::uint64_t label = 0);
  Span(Root root, std::string_view name, std::uint64_t label = 0);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  [[nodiscard]] std::uint32_t id() const { return id_; }

 private:
  std::uint32_t id_ = 0;
  std::uint32_t parent_ = 0;
  std::uint32_t restore_adoption_ = 0;
  std::int64_t start_ns_ = 0;
  std::uint64_t label_ = 0;
  bool adopted_ = false;
  bool is_root_ = false;
  char name_[48] = {};  // truncating copy: spans never allocate on open
};

/// The process-global collector every pipeline span reports into. Leaked
/// on purpose, like obs::metrics().
TraceCollector& trace();

}  // namespace anycast::obs
