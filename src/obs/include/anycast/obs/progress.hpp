// Observability: live progress heartbeat for long pipeline phases.
//
// A census over millions of targets runs for minutes to hours; the
// heartbeat turns the metrics registry into periodic one-line snapshots
// (VPs done, probes sent, reply/timeout rates, greylist feed, ETA)
// without touching the probe hot path: each tick is one registry scrape
// on a dedicated ticker thread. Ticks also feed the flight recorder —
// a kTiming journal event per snapshot plus a counter-track sample for
// the Perfetto export — and drain the journal's thread arenas, so a
// long run streams its timing events instead of buffering them.
//
// Determinism: everything a tick does is read-only against the pipeline
// (scrape + drain). Tick timing is wall-clock and therefore
// nondeterministic, which is exactly why ticks flush but never commit
// the journal — commit points stay at deterministic boundaries.
#pragma once

#include <cstdio>
#include <string>

#include "anycast/obs/journal.hpp"
#include "anycast/obs/metrics.hpp"
#include "anycast/obs/trace_export.hpp"

namespace anycast::obs {

struct ProgressConfig {
  const MetricsRegistry* registry = nullptr;  // nullptr = global metrics()
  Journal* journal = nullptr;                 // optional: journal + drain
  CounterSampler* sampler = nullptr;          // optional: Perfetto counters
  std::FILE* sink = nullptr;                  // optional: line sink (stderr)
  std::string phase = "census";
};

/// Formats and fans out heartbeat snapshots. Construction records the
/// phase start; each `tick` reports against it. Safe to call from a
/// single ticker thread while workers run.
class ProgressTracker {
 public:
  explicit ProgressTracker(ProgressConfig config);

  /// One heartbeat: builds the snapshot line for `done`/`total` work
  /// units, writes it to the sink, journals a `progress.heartbeat`
  /// kTiming event, samples counter tracks, and drains the journal.
  /// Returns the line (tests assert on it directly).
  std::string tick(std::size_t done, std::size_t total);

  /// Same, with the elapsed clock injected — the deterministic entry
  /// point `tick` delegates to.
  std::string tick(std::size_t done, std::size_t total,
                   double elapsed_seconds);

  [[nodiscard]] std::size_t ticks() const { return ticks_; }

 private:
  ProgressConfig config_;
  std::int64_t start_ns_ = 0;
  std::size_t ticks_ = 0;
};

}  // namespace anycast::obs
