// Observability: the census flight recorder's structured event journal.
//
// Metrics answer "how much"; the journal answers "what happened, in what
// order". Every pipeline component appends JSONL events — one JSON object
// per line — under the same two constraints as the metrics registry
// (DESIGN.md §10, §12):
//
//  1. **Lock-free on the hot path.** `emit` serialises into a
//     fixed-capacity per-thread arena and publishes with one release
//     store; no mutex, no allocation. Buffers are bounded: when a
//     thread's arena fills between flushes the event is dropped and
//     counted, never silently lost or unboundedly queued.
//
//  2. **Semantic events are deterministic.** Every event declares the
//     same class split as metrics. `kSemantic` events carry a
//     caller-chosen deterministic `order` key and no wall-clock stamp;
//     at `commit()` the batch is stably sorted by that key, so the
//     semantic subset of a journal is byte-identical across thread
//     counts and across crash+resume (walk events flush through
//     `flush_walk_metrics`, live == replayed). `kTiming` events carry a
//     steady-clock stamp, stream out in completion order, and are the
//     only class subject to the wall-clock token-bucket rate limiter.
//
// Durability contract: `commit()` is called at the same boundaries that
// make checkpoints durable (the end of each census reduction) and
// fsyncs, so after a crash the journal file is a consistent prefix of
// complete lines — `journal_consistent_prefix` recovers it the same way
// checkpoint salvage recovers a valid record prefix.
#pragma once

#include <cstdint>
#include <filesystem>
#include <initializer_list>
#include <string>
#include <string_view>
#include <type_traits>

#include "anycast/obs/metrics.hpp"

namespace anycast::obs {

enum class Severity : std::uint8_t { kDebug = 0, kInfo, kWarn, kError };

std::string_view to_string(Severity severity);

/// One "name": value pair of an event. Construct from string views,
/// booleans, or any arithmetic type; values are serialised immediately,
/// so string views only need to outlive the `emit` call.
struct EventField {
  enum class Kind : std::uint8_t { kU64, kI64, kF64, kBool, kStr };

  std::string_view name;
  Kind kind = Kind::kU64;
  std::uint64_t u64 = 0;
  std::int64_t i64 = 0;
  double f64 = 0.0;
  bool flag = false;
  std::string_view str;

  EventField(std::string_view n, std::string_view v)
      : name(n), kind(Kind::kStr), str(v) {}
  EventField(std::string_view n, const char* v)
      : name(n), kind(Kind::kStr), str(v) {}
  template <typename T, typename = std::enable_if_t<std::is_arithmetic_v<T>>>
  EventField(std::string_view n, T v) : name(n) {
    if constexpr (std::is_same_v<T, bool>) {
      kind = Kind::kBool;
      flag = v;
    } else if constexpr (std::is_floating_point_v<T>) {
      kind = Kind::kF64;
      f64 = static_cast<double>(v);
    } else if constexpr (std::is_signed_v<T>) {
      kind = Kind::kI64;
      i64 = static_cast<std::int64_t>(v);
    } else {
      kind = Kind::kU64;
      u64 = static_cast<std::uint64_t>(v);
    }
  }
};

class Journal {
 public:
  Journal();
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Appends one event. A no-op unless the journal is recording. `key`
  /// must be [a-z0-9_.] (throws std::logic_error otherwise). For
  /// kSemantic events `order` is the deterministic sort key within a
  /// commit batch (VP id for per-walk events, `next_order()` for
  /// reduction-thread events); for kTiming events it is carried but the
  /// stream stays in completion order. Oversized events are truncated
  /// deterministically, never split across lines.
  void emit(MetricClass cls, Severity sev, std::string_view key,
            std::uint64_t order, std::initializer_list<EventField> fields);

  /// Recording master switch (default off, so library users that never
  /// opt in pay one relaxed load per emit). `open()` turns it on.
  void set_recording(bool recording);
  [[nodiscard]] bool recording() const;

  /// Starts the file sink (truncating `path`) and recording. Returns
  /// false — with the journal left closed — when the path is not
  /// writable, so callers can fail fast before any probing starts.
  bool open(const std::filesystem::path& path);

  /// Drains every thread arena: timing events stream to the file (when
  /// one is open) in drain order; semantic events are staged for the
  /// next commit. Safe to call concurrently with `emit` (the heartbeat
  /// calls it mid-run).
  void flush();

  /// `flush()`, then writes the staged semantic batch — stably sorted by
  /// `order` — and fsyncs the file. Call at deterministic boundaries
  /// only (census reduction end, process exit): commit points cut the
  /// batches, so they are part of the semantic byte contract.
  void commit();

  /// `commit()` and closes the file. Recording stays on if set.
  void close();

  /// Canonical text of every committed semantic event, in commit order.
  /// This is the journal's deterministic fingerprint, the event-stream
  /// analogue of MetricsRegistry::semantic_snapshot().
  [[nodiscard]] std::string semantic_text() const;

  /// Next reduction-sequence order key. Deterministic when callers
  /// invoke it from deterministically ordered code (the reduction
  /// thread); keys are offset past the VP-id range so reduction events
  /// sort after the walks they summarise.
  [[nodiscard]] std::uint64_t next_order();
  static constexpr std::uint64_t kReductionOrderBase = 1ull << 32;

  /// Events rejected because their thread arena (or the staging cap)
  /// was full. Nonzero drops void the semantic byte-identity guarantee
  /// for this run — tests assert zero.
  [[nodiscard]] std::uint64_t events_dropped() const;
  /// Timing events suppressed by the per-key token bucket.
  [[nodiscard]] std::uint64_t events_rate_limited() const;
  /// Events written to the sink or staged/committed so far (post-flush).
  [[nodiscard]] std::uint64_t events_recorded() const;

  /// Severity floor: events below it are discarded uncounted.
  void set_min_severity(Severity severity);

  /// Token bucket applied to kTiming events, per event key: `burst`
  /// tokens capacity, refilled at `per_second` (0 = no refill). The
  /// limiter is wall-clock driven, which is exactly why semantic events
  /// are exempt — suppressing them by time would break replay identity.
  /// The bucket map holds at most kMaxLimiterKeys entries; inserting a
  /// fresh key beyond that evicts the least-recently-touched bucket, so a
  /// long watch run with per-round key churn stays bounded (the evicted
  /// key just re-enters with a full burst if it comes back).
  void set_rate_limit(double per_second, double burst);
  static constexpr std::size_t kMaxLimiterKeys = 64;
  /// Live token-bucket count (test hook for the eviction bound).
  [[nodiscard]] std::size_t rate_limiter_key_count() const;

  /// Per-thread arena bytes for arenas created after the call (default
  /// 1 MiB). Test knob for exercising the bounded-drop path.
  void set_arena_capacity(std::size_t bytes);

  /// Clears events, counters, order sequence, and rate-limiter state;
  /// re-epochs timing stamps; detaches (but does not close) nothing —
  /// any open file is closed. Call only while no thread is emitting.
  void reset();

  struct Impl;  // public so implementation-file helpers can name it

 private:
  Impl* impl_;  // raw: the global journal is intentionally leaked
};

/// The process-global journal every pipeline component records into.
/// Leaked on purpose, like obs::metrics(): emitting threads may retire
/// after static destruction begins.
Journal& journal();

/// The longest prefix of `text` consisting of complete lines — what a
/// crash-interrupted journal file is guaranteed to contain up to its
/// last fsync barrier (every commit ends in one).
std::string_view journal_consistent_prefix(std::string_view text);

}  // namespace anycast::obs
