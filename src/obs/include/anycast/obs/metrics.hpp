// Observability: the census pipeline's metrics registry.
//
// The paper's census is an operational pipeline — four censuses, millions
// of targets, greylisting, convergence loops — and its accounting (probes
// sent, ICMP errors, greylist hits, retry outcomes, iGreedy iterations)
// is as much a result as the RTT matrix. This registry collects exactly
// those per-phase counters, under two hard constraints:
//
//  1. **Lock-free on the hot path.** Counters and histograms write into
//     per-thread shards (one cache-friendly slot array per thread, relaxed
//     atomics touched only by their owner); shards are merged at scrape
//     time. No shared atomics, no locks, anywhere a probe loop runs.
//
//  2. **Semantic metrics are deterministic.** Every metric declares a
//     class at registration: `kSemantic` values depend only on what the
//     pipeline computed (probe counts, greylist sizes, simulated RTTs) and
//     are *byte-identical* across thread counts and across
//     crash+resume — integer sums and integer bucket counts commute, so
//     shard merge order cannot leak in. `kTiming` values (wall-clock
//     durations, pool busy time, per-lane task counts) may vary run to
//     run and are excluded from `semantic_snapshot()`. The snapshot is
//     therefore a cheap end-to-end oracle: tier-1 tests pin it the same
//     way they pin census digests.
//
// There is one process-global registry (`metrics()`); unit tests may
// construct private registries. Registration is idempotent by name, so
// modules declare their instruments in function-local statics.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace anycast::obs {

class MetricsRegistry;

/// Determinism class, declared — deliberately, no default — per metric.
/// Semantic: identical for identical pipeline inputs, whatever the thread
/// count and whether the run was live or resumed from checkpoints.
/// Timing: wall-clock or scheduling dependent; excluded from the
/// deterministic snapshot (tests keep an explicit allowlist of these, so
/// a forgotten classification fails loudly).
enum class MetricClass : std::uint8_t { kSemantic, kTiming };

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

std::string_view to_string(MetricClass cls);
std::string_view to_string(MetricKind kind);

/// Monotonic integer counter. A value-type handle: copy freely, `add` from
/// any thread — increments land in the calling thread's shard.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n = 1) const;
  inline void inc() const { add(1); }

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* registry, std::uint32_t slot)
      : registry_(registry), slot_(slot) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// Last-write-wins double gauge. Not sharded: gauges record states, not
/// flows, and every semantic gauge in the pipeline is set from the
/// deterministic reduction thread. (A gauge set concurrently from racing
/// threads is last-writer-wins and should be declared kTiming.)
class Gauge {
 public:
  Gauge() = default;
  void set(double value) const;

 private:
  friend class MetricsRegistry;
  Gauge(MetricsRegistry* registry, std::uint32_t index)
      : registry_(registry), index_(index) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t index_ = 0;
};

/// Fixed-bucket histogram. Bucket bounds are fixed at registration;
/// `observe` increments one integer bucket slot in the calling thread's
/// shard. The sum is kept in fixed-point milli-units (an integer), so it
/// commutes across shards like every other semantic value — a floating
/// sum would depend on merge order.
class Histogram {
 public:
  Histogram() = default;
  void observe(double value) const;

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* registry, std::uint32_t metric_index)
      : registry_(registry), metric_index_(metric_index) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t metric_index_ = 0;
};

/// One scraped metric, fully merged. Histograms carry per-bucket
/// (non-cumulative) counts parallel to `bucket_bounds` plus an overflow
/// bucket at the end.
struct MetricValue {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  MetricClass cls = MetricClass::kSemantic;
  std::uint64_t value = 0;                  // counter
  double gauge = 0.0;                       // gauge
  std::vector<double> bucket_bounds;        // histogram
  std::vector<std::uint64_t> bucket_counts; // |bounds| + 1 (overflow last)
  std::uint64_t count = 0;                  // histogram: total observations
  std::int64_t sum_milli = 0;               // histogram: fixed-point sum
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or looks up) an instrument. Idempotent by name; a name
  /// re-registered with a different kind, class, or bucket layout throws
  /// std::logic_error — one name means one instrument, forever.
  Counter counter(std::string_view name, MetricClass cls,
                  std::string_view help = {});
  Gauge gauge(std::string_view name, MetricClass cls,
              std::string_view help = {});
  Histogram histogram(std::string_view name, MetricClass cls,
                      std::vector<double> bucket_bounds,
                      std::string_view help = {});

  /// All registered metrics with fully merged values, sorted by name.
  [[nodiscard]] std::vector<MetricValue> scrape() const;

  /// JSON export of `scrape()` (stable field order, sorted by name).
  [[nodiscard]] std::string scrape_json() const;

  /// Prometheus text exposition of `scrape()` (counters as `_total`,
  /// histograms with cumulative `le` buckets).
  [[nodiscard]] std::string scrape_prometheus() const;

  /// Canonical text of **semantic** metrics only: the deterministic
  /// fingerprint of a run. Byte-identical across thread counts and across
  /// crash+resume for the same pipeline input.
  [[nodiscard]] std::string semantic_snapshot() const;

  /// Zeroes every value (counters, gauges, histograms, live and retired
  /// shards). Registrations survive. Call only while no thread is
  /// writing — between pipeline phases, not during one.
  void reset();

  /// Kill switch for overhead measurement: while disabled, add/observe/set
  /// return immediately. Enabled by default.
  void set_enabled(bool enabled);
  [[nodiscard]] bool enabled() const;

  /// Shards ever created (live + retired): visible for tests.
  [[nodiscard]] std::size_t shard_count() const;

  struct Impl;  // public so implementation-file helpers can name it

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;
  Impl* impl_;  // raw: the global registry is intentionally leaked
};

/// The process-global registry every pipeline stage reports into. Leaked
/// on purpose (constructed on first use, never destroyed) so worker
/// threads retiring their shards at thread exit can never outlive it.
MetricsRegistry& metrics();

/// Prometheus exposition escaping, per the text-format spec: HELP text
/// escapes `\` and newline; label values additionally escape `"`.
/// Exposed so exposition tests can exercise them directly.
[[nodiscard]] std::string prometheus_escape_help(std::string_view text);
[[nodiscard]] std::string prometheus_escape_label(std::string_view text);

}  // namespace anycast::obs
