#pragma once

/// The live telemetry plane: one process-global aggregation point tying
/// the latency histograms (latency.hpp), windowed series (timeseries.hpp),
/// and SLO tracker (slo.hpp) together for the serving/watch daemons.
///
/// Feeding happens at three chokepoints:
///  * `serving::answer_query` records per-stage LatencyHisto samples and
///    calls `note_query_error` on malformed input;
///  * any ~1ms polling loop (the watch serve thread, the
///    `--metrics-interval` flusher) calls `tick()`, which rotates the
///    per-second series at most once per wall-clock second and evaluates
///    latency-class SLO objectives;
///  * the watch round loop calls `note_round` + `observe_slo_ratio` once
///    per round on the deterministic reduction thread.
///
/// Everything here is kTiming-class. Ratio (availability) SLO windows are
/// fed from semantic round aggregates, so *their* transitions are safe to
/// journal as kSemantic — the caller (watch.cpp) owns that emit; the
/// plane itself journals only kTiming latency transitions from `tick`.

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "anycast/obs/slo.hpp"
#include "anycast/obs/timeseries.hpp"

namespace anycast::obs {

class TelemetryPlane {
 public:
  TelemetryPlane();
  TelemetryPlane(const TelemetryPlane&) = delete;
  TelemetryPlane& operator=(const TelemetryPlane&) = delete;

  /// Per-second serving aggregates: qps, errors_per_s, p50_us, p99_us,
  /// p999_us (quantiles over that second's serving_query_ns window).
  TimeSeries& per_second() { return per_second_; }
  /// Per-round census aggregates: coverage, completed, active, probes,
  /// echo_rate, dirty, anycast, round_ms (t = round index).
  TimeSeries& per_round() { return per_round_; }

  /// Malformed serving queries (also mirrored to the serving_errors
  /// counter by the serving layer).
  void note_query_error();
  [[nodiscard]] std::uint64_t query_errors() const;

  /// Rotate the per-second series if >= 1s has passed since the last
  /// rotation and evaluate latency-class SLO objectives. Cheap when
  /// called more often (one relaxed clock read + compare). Thread-safe.
  void tick();
  /// Deterministic test hook: same logic against a caller-supplied
  /// monotonic timestamp in seconds.
  void tick_at(double now_seconds);

  /// Push one census round into the per-round series.
  void note_round(std::uint64_t round, double coverage, double completed,
                  double active, double probes, double echo_rate,
                  double dirty, double anycast, double round_ms);

  /// Install (replacing any previous) SLO objectives; empty clears.
  void set_slo(std::vector<SloObjective> objectives);
  void set_slo(std::vector<SloObjective> objectives,
               SloTracker::Config config);
  [[nodiscard]] bool has_slo() const;

  /// Feed one ratio-objective window (watch round, reduction thread).
  /// Returns the transition, if any, for the caller to journal with the
  /// class of its choosing.
  std::optional<SloTracker::Transition> observe_slo_ratio(
      std::string_view objective, std::uint64_t t, std::uint64_t good,
      std::uint64_t bad);

  [[nodiscard]] std::vector<SloTracker::State> slo_states() const;

  /// Full telemetry document: MetricsRegistry scrape_json() extended with
  /// "latency", "series", and "slo" sections (the `metrics` array keeps
  /// its exact existing shape, so scrape-file consumers keep working).
  [[nodiscard]] std::string document_json() const;
  /// Prometheus exposition: registry families + latency histograms.
  [[nodiscard]] std::string document_prometheus() const;

  /// Clears series, error counts, tick state, and the SLO tracker (not
  /// the latency histograms — use latency_reset_all()). Test hook.
  void reset();

 private:
  TimeSeries per_second_;
  TimeSeries per_round_;
  std::atomic<std::uint64_t> query_errors_{0};

  mutable std::mutex mutex_;
  bool ticked_ = false;
  double last_tick_s_ = 0.0;
  std::uint64_t tick_index_ = 0;
  LatencyHisto::Snapshot prev_query_;   // cumulative at last rotation
  std::uint64_t prev_errors_ = 0;
  std::optional<SloTracker> slo_;
};

/// The process-global plane (leaked, like obs::metrics()).
TelemetryPlane& telemetry();

/// Write `body` to `path` via tmp file + fsync + rename, so a reader (or
/// a crash) never observes a torn scrape. Returns false on any IO error.
bool write_file_atomic(const std::filesystem::path& path,
                       std::string_view body);

}  // namespace anycast::obs
