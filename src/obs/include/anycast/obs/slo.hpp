#pragma once

/// Service-level objectives with multi-window burn-rate tracking.
///
/// Objectives come from a `--slo` spec string, e.g.
///
///   --slo "p99_lookup_us=50,availability=0.999"
///
/// Two objective shapes exist:
///
///  * `availability=<ratio>` — a ratio objective: each evaluation window
///    supplies (good, bad) event counts (the watch daemon feeds
///    completed / non-completed VP walks per round). The error budget is
///    1 - ratio. These inputs are semantic round aggregates, so their
///    violation transitions emit kSemantic journal events and are
///    drift-gated across thread counts.
///  * `p<q>_<stage>_<unit>=<bound>` — a latency objective over a serving
///    stage histogram (stage in parse|lookup|nearest|diff|query, unit in
///    us|ms, q in {50, 90, 99, 999, ...} read as a quantile digit string).
///    The implied budget is 1 - q: `p99_lookup_us=50` means "at most 1% of
///    lookups may exceed 50us". Windows are fed from LatencyHisto snapshot
///    deltas. Latency is wall-clock, so these transitions are
///    kTiming-class.
///
/// Burn rate per window = (bad fraction) / budget; a burn of 1.0 spends
/// the budget exactly. The tracker keeps a short and a long trailing
/// window and flags a violation only when the short-window burn clears
/// `burn_threshold` AND the long-window burn has consumed the budget —
/// the standard multi-window guard against paging on a single bad blip.
///
/// All arithmetic is over integer event counts on logical time (round or
/// tick index), so a given input sequence produces one transition
/// sequence regardless of thread count or wall clock.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "anycast/obs/latency.hpp"
#include "anycast/obs/metrics.hpp"

namespace anycast::obs {

struct SloObjective {
  enum class Input { kRatio, kLatency };

  std::string name;       // spec key, e.g. "availability", "p99_lookup_us"
  double threshold = 0.0; // required ratio, or latency bound in `unit`
  double budget = 0.0;    // allowed bad fraction per window
  Input input = Input::kRatio;
  MetricClass cls = MetricClass::kSemantic;

  // Latency objectives only:
  double quantile = 0.0;
  std::string stage;            // parse|lookup|nearest|diff|query
  std::uint64_t threshold_ns = 0;
  std::string histo_name;       // "serving_<stage>_ns"
};

/// Parse a comma-separated spec. Returns nullopt and sets `error` on any
/// malformed entry; an empty spec yields an empty vector.
std::optional<std::vector<SloObjective>> parse_slo_spec(
    std::string_view spec, std::string* error);

class SloTracker {
 public:
  struct Config {
    std::size_t short_window = 1;   // windows in the fast burn average
    std::size_t long_window = 4;    // windows in the slow burn average
    double burn_threshold = 2.0;    // short-window burn that trips paging
  };

  struct Transition {
    std::string objective;
    bool entered = false;  // true: ok -> violating, false: recovered
    std::uint64_t t = 0;
    std::uint64_t burn_short_permille = 0;
    std::uint64_t burn_long_permille = 0;
  };

  struct State {
    SloObjective objective;
    std::uint64_t windows = 0;
    std::uint64_t violations = 0;   // enter transitions
    std::uint64_t burn_short_permille = 0;
    std::uint64_t burn_long_permille = 0;
    bool violating = false;
  };

  explicit SloTracker(std::vector<SloObjective> objectives);
  SloTracker(std::vector<SloObjective> objectives, Config config);

  /// Record one evaluation window of (good, bad) event counts for a ratio
  /// objective and re-evaluate; returns a transition when the violating
  /// state flips. Unknown objective names are ignored (returns nullopt).
  std::optional<Transition> observe(std::string_view objective,
                                    std::uint64_t t, std::uint64_t good,
                                    std::uint64_t bad);

  /// Record one window for a latency objective from a cumulative histogram
  /// snapshot: the delta since this objective's previous snapshot becomes
  /// the window (bad = samples above threshold_ns).
  std::optional<Transition> observe_histogram(
      std::string_view objective, std::uint64_t t,
      const LatencyHisto::Snapshot& cumulative);

  std::vector<State> states() const;
  const std::vector<SloObjective>& objectives() const { return objectives_; }
  const Config& config() const { return config_; }

  /// JSON array body for the "slo" telemetry document section.
  std::string to_json() const;

 private:
  struct Window {
    std::uint64_t good = 0;
    std::uint64_t bad = 0;
  };
  struct Track {
    std::vector<Window> recent;  // ring, size <= config_.long_window
    std::size_t next = 0;
    std::uint64_t windows = 0;
    std::uint64_t violations = 0;
    std::uint64_t burn_short_permille = 0;
    std::uint64_t burn_long_permille = 0;
    bool violating = false;
    LatencyHisto::Snapshot prev;  // latency objectives: last cumulative
  };

  std::optional<Transition> push_window(std::size_t index, std::uint64_t t,
                                        std::uint64_t good, std::uint64_t bad);
  void refresh_worst_burn() const;

  std::vector<SloObjective> objectives_;
  Config config_;
  std::vector<Track> tracks_;
};

}  // namespace anycast::obs
