#pragma once

/// Lock-free log-linear ("HDR-style") latency histograms.
///
/// The MetricsRegistry histogram (metrics.hpp) carries a handful of
/// analyst-chosen buckets and pays a binary search per observation — fine
/// for per-round aggregates, wrong for the serving hot path, where we want
/// every query recorded at multi-million QPS with bounded relative error
/// across nine decades of dynamic range.
///
/// LatencyHisto buckets are log-linear: values below 2^kSubBits land in
/// exact unit-wide buckets; above that, each power-of-two octave is split
/// into 2^kSubBits equal-width sub-buckets, so bucket width never exceeds
/// value / 2^kSubBits. Quantile estimates are therefore within
/// kMaxRelativeError (1/128 < 1%) of the exact order statistic, and
/// `slot_of` is a handful of bit ops — no search, no floating point.
///
/// Concurrency mirrors MetricsRegistry: each recording thread owns a
/// private shard of relaxed atomics (allocated lazily on first record into
/// that histogram), scrapes merge all shards, and exiting threads fold
/// their shards into a retired array through a live-instance table so
/// counts survive pool teardown. `record` takes no locks after the first
/// call on a thread.
///
/// All LatencyHisto data is kTiming-class by construction: wall-clock
/// durations never appear in semantic snapshots, pinned digests, or the
/// drift-gated journal stream.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace anycast::obs {

class LatencyHisto {
 public:
  /// Sub-bucket resolution: 2^7 = 128 sub-buckets per octave.
  static constexpr std::uint32_t kSubBits = 7;
  static constexpr std::uint64_t kSubCount = 1ull << kSubBits;
  /// Documented quantile error bound: an estimate e for exact order
  /// statistic x satisfies x <= e <= x * (1 + kMaxRelativeError).
  static constexpr double kMaxRelativeError =
      1.0 / static_cast<double>(kSubCount);
  /// Values saturate at 2^38 - 1 (~4.6 minutes in ns, ~76 hours in us);
  /// larger values clamp into the top bucket.
  static constexpr std::uint32_t kValueBits = 38;
  static constexpr std::uint64_t kMaxValue = (1ull << kValueBits) - 1;
  /// Dense slot count: the exact region plus one octave of sub-buckets per
  /// power of two above it. 4096 slots = 32 KiB per (thread, histogram).
  static constexpr std::uint32_t kSlots =
      static_cast<std::uint32_t>((kValueBits - kSubBits + 1) * kSubCount);

  /// Merged view of a histogram at one scrape. Bucket `s` counts values in
  /// [slot_lower(s), slot_upper(s)).
  struct Snapshot {
    std::string name;
    std::string unit;
    std::string help;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::vector<std::uint64_t> counts;  // dense, size kSlots (empty if count==0)

    /// Upper-representative quantile estimate: the largest value in the
    /// bucket holding the ceil(q * count)-th smallest sample. Exact for
    /// values < kSubCount; within kMaxRelativeError above. 0 when empty.
    double quantile(double q) const;
    /// Smallest / largest recorded value's bucket bounds (0 when empty).
    std::uint64_t min() const;
    std::uint64_t max() const;
    /// Samples recorded strictly above `threshold`, counting only buckets
    /// whose entire range exceeds it (undercounts by at most one bucket —
    /// deterministic, which is what the SLO window math needs).
    std::uint64_t count_above(std::uint64_t threshold) const;
    /// Per-window delta: this snapshot minus an earlier one of the same
    /// histogram. min/max/quantiles of the result describe the window.
    Snapshot delta_since(const Snapshot& prev) const;
  };

  LatencyHisto(std::string_view name, std::string_view unit,
               std::string_view help);
  ~LatencyHisto();
  LatencyHisto(const LatencyHisto&) = delete;
  LatencyHisto& operator=(const LatencyHisto&) = delete;

  /// Record one value (saturating at kMaxValue). Lock-free after the
  /// calling thread's first record; a no-op while recording is disabled.
  void record(std::uint64_t value);

  /// Merge every live and retired shard into one Snapshot.
  Snapshot snapshot() const;

  /// Zero all shards (tests and bench phases).
  void reset();

  const std::string& name() const;
  const std::string& unit() const;

  /// Bucket arithmetic, exposed so tests can probe edges directly.
  static std::uint32_t slot_of(std::uint64_t value);
  static std::uint64_t slot_lower(std::uint32_t slot);
  static std::uint64_t slot_upper(std::uint32_t slot);

  /// Process-global named instance: first call creates (and leaks — see
  /// metrics.cpp for why) a histogram; later calls return the same one.
  /// unit/help are fixed by the creating call.
  static LatencyHisto& get(std::string_view name, std::string_view unit,
                           std::string_view help);

  struct Impl;

 private:
  Impl* impl_;
};

/// Global recording kill switch (default on). The bench telemetry phase
/// measures hot-path overhead by toggling this around identical workloads.
void set_latency_recording(bool enabled);
bool latency_recording();

/// Snapshots of every registered global histogram, sorted by name.
std::vector<LatencyHisto::Snapshot> latency_snapshots();

/// Zero every registered global histogram (tests and bench phases).
void latency_reset_all();

/// Prometheus exposition for all global histograms: one cumulative
/// histogram family per histo (non-empty buckets + +Inf, _sum/_count),
/// promtool-lintable alongside MetricsRegistry::scrape_prometheus().
std::string latency_prometheus();

/// JSON array body for the "latency" section of the telemetry document:
/// [{"name":..., "unit":..., "count":..., "sum":..., "min":..., "max":...,
///   "p50":..., "p90":..., "p99":..., "p999":...}, ...]
std::string latency_json();

}  // namespace anycast::obs
