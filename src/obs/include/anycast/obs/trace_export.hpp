// Observability: Chrome-trace / Perfetto export of the span tree.
//
// Spans record *structure* (what nested under what, per VP, per shard);
// this exporter renders them in the Trace Event Format that
// ui.perfetto.dev and chrome://tracing load directly. Spans become async
// begin/end pairs keyed by span id — async events tolerate the
// overlapping lifetimes that parallel sibling walks produce, where
// stack-style "X" events would not. Counter tracks come from the metrics
// registry, sampled over time by a CounterSampler (the progress heartbeat
// samples each tick, plus one final sample at export), so a loaded trace
// shows probe/reply/greylist counters advancing under the span timeline.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "anycast/obs/metrics.hpp"
#include "anycast/obs/trace.hpp"

namespace anycast::obs {

/// One sampled counter value. `t_ns` is relative to the trace
/// collector's epoch so samples land on the span timeline.
struct CounterSample {
  std::int64_t t_ns = 0;
  std::string name;
  double value = 0.0;
};

/// Bounded time-series store of registry scrapes. Sampling takes the
/// store mutex plus one scrape — heartbeat-frequency work, never
/// hot-path. When the cap is hit further samples are counted as dropped,
/// mirroring the span collector's policy.
class CounterSampler {
 public:
  CounterSampler();
  ~CounterSampler();
  CounterSampler(const CounterSampler&) = delete;
  CounterSampler& operator=(const CounterSampler&) = delete;

  /// Scrapes `registry` and appends one sample per counter (value),
  /// gauge (value), and histogram (observation count), stamped `t_ns`
  /// past the trace epoch.
  void sample(const MetricsRegistry& registry, std::int64_t t_ns);

  /// Convenience: samples the global metrics() at now − trace().epoch_ns().
  void sample_now();

  [[nodiscard]] std::vector<CounterSample> samples() const;
  [[nodiscard]] std::size_t dropped() const;

  /// Max retained samples before drops begin. Default 65536.
  void set_capacity(std::size_t capacity);

  void reset();

 private:
  struct Impl;
  Impl* impl_;
};

/// The process-global sampler feeding --trace-out. Leaked on purpose,
/// like obs::metrics().
CounterSampler& counter_sampler();

/// Renders spans + counter samples as a Trace Event Format JSON object
/// (`{"traceEvents": [...], "displayTimeUnit": "ms", "otherData": ...}`).
/// Pure function of its inputs; `dropped_spans`/`orphan_spans` are
/// surfaced in otherData so a truncated trace says so.
[[nodiscard]] std::string chrome_trace_json(
    const std::vector<SpanRecord>& spans,
    const std::vector<CounterSample>& samples, std::size_t dropped_spans,
    std::size_t orphan_spans);

/// Takes a final sample of the global registry, then writes the global
/// collector's spans plus all counter samples to `path`. Returns false
/// (writing nothing) when the path cannot be opened.
bool write_chrome_trace(const std::filesystem::path& path);

}  // namespace anycast::obs
