#pragma once

/// Fixed-capacity windowed time series.
///
/// A TimeSeries is a named ring buffer of (t, values[]) points with a
/// fixed field schema, fed from coarse instrumentation chokepoints — one
/// push per wall-clock second on the serving side, one per round on the
/// census side — so a mutex per push is free relative to the work between
/// pushes. Rotation drops the oldest point; `total_pushed` minus `size`
/// says how much history has scrolled off.
///
/// Like every telemetry surface in this layer, series data is
/// kTiming-class: it never feeds semantic snapshots or drift-gated
/// journal streams.

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace anycast::obs {

class TimeSeries {
 public:
  struct Point {
    std::uint64_t t = 0;
    std::vector<double> v;  // one per field, same order as fields()
  };

  struct FieldStats {
    std::size_t n = 0;
    double last = 0.0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
  };

  TimeSeries(std::string name, std::vector<std::string> fields,
             std::size_t capacity);

  /// Append one point; missing trailing values read as 0, extras drop.
  /// At capacity the oldest point rotates out.
  void push(std::uint64_t t, std::span<const double> values);

  /// Up to the most recent `n` points, oldest first.
  std::vector<Point> window(std::size_t n = SIZE_MAX) const;

  /// Aggregates of one field over the most recent `last_n` points.
  FieldStats stats(std::size_t field, std::size_t last_n = SIZE_MAX) const;

  const std::string& name() const { return name_; }
  const std::vector<std::string>& fields() const { return fields_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  std::uint64_t total_pushed() const;
  void clear();

  /// JSON object for the telemetry document: field arrays keyed by name,
  /// oldest first — {"name":..., "t": [...], "fields": {"qps": [...]}}.
  std::string to_json() const;

 private:
  std::string name_;
  std::vector<std::string> fields_;
  std::size_t capacity_;

  mutable std::mutex mutex_;
  std::vector<Point> ring_;    // capacity_ entries once full
  std::size_t next_ = 0;       // ring write index
  std::uint64_t pushed_ = 0;
};

}  // namespace anycast::obs
