#include "anycast/geo/city.hpp"

// City is a plain aggregate; its inline members need no out-of-line
// definitions. This translation unit anchors the header for build systems
// that dislike header-only targets inside a library.
