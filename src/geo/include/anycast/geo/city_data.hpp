// Embedded world-city table.
//
// The paper uses a GeoNames-style database of populated places; offline we
// embed a curated table of ~500 cities covering every continent, all major
// peering/IXP locations, and the specific places the paper's validation
// discusses (e.g. Ashburn VA vs Philadelphia PA for the OpenDNS
// population-bias case study of Sec. 3.4). Coordinates are city centres to
// ~0.01 degree; populations are metro-area estimates. Precision beyond that
// is irrelevant at the >100 km scale of latency geolocation.
#pragma once

#include <span>

#include "anycast/geo/city.hpp"

namespace anycast::geo {

/// The full embedded table, sorted by descending population.
std::span<const City> world_cities();

}  // namespace anycast::geo
