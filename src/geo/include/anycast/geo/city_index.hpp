// Spatial queries over the city table.
//
// The geolocation step repeatedly asks "which cities lie inside this disk,
// and which has the largest population?". The index sorts cities by
// latitude so a disk query scans only the latitude band the disk can reach,
// then filters by exact great-circle distance.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "anycast/geo/city.hpp"
#include "anycast/geodesy/disk.hpp"

namespace anycast::geo {

/// Immutable spatial index over a set of cities.
class CityIndex {
 public:
  /// Indexes the given cities (views must outlive the index). The default
  /// constructor indexes the embedded world table.
  CityIndex();
  explicit CityIndex(std::span<const City> cities);

  /// All cities whose centre lies inside `disk`, in descending population
  /// order.
  [[nodiscard]] std::vector<const City*> cities_in(
      const geodesy::Disk& disk) const;

  /// The most populated city inside `disk` — the paper's geolocation
  /// criterion ("picking the largest city in that disk"). Nullptr when the
  /// disk holds no known city.
  [[nodiscard]] const City* most_populated_in(const geodesy::Disk& disk) const;

  /// The city nearest to `point` (nullptr only for an empty index).
  /// Used to resolve simulator sites and to score geolocation error.
  [[nodiscard]] const City* nearest(const geodesy::GeoPoint& point) const;

  /// Case-sensitive lookup by exact name; nullptr when absent.
  [[nodiscard]] const City* by_name(std::string_view name) const;

  [[nodiscard]] std::size_t size() const { return by_latitude_.size(); }

 private:
  template <typename Visitor>  // Visitor(const City&)
  void visit_band(const geodesy::Disk& disk, Visitor&& visit) const;

  std::vector<const City*> by_latitude_;  // ascending latitude
};

/// Process-wide index over the embedded world-city table.
const CityIndex& world_index();

}  // namespace anycast::geo
