// Spatial queries over the city table.
//
// The geolocation step repeatedly asks "which cities lie inside this disk,
// and which has the largest population?". The index buckets cities into a
// 2D latitude/longitude grid (geodesy::LatLonGrid, the same pruning
// structure the MIS adjacency build uses) with per-city unit vectors
// precomputed, so a disk query visits only the cells the disk can reach
// and tests each candidate in chord space — no per-city trigonometry.
// Name lookup is a hash map; nearest() is an expanding row search over
// the grid scored with the batch haversine.
//
// Every query keeps the exact semantics of the original latitude-band
// scan (including its tie-breaking and its band arithmetic), which is
// retained verbatim as the `*_scan` methods — the property-test oracles
// and the scalar side of the bench_analysis_kernel duel.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "anycast/geo/city.hpp"
#include "anycast/geodesy/chord.hpp"
#include "anycast/geodesy/disk.hpp"
#include "anycast/geodesy/grid.hpp"

namespace anycast::geo {

/// Immutable spatial index over a set of cities.
class CityIndex {
 public:
  /// Indexes the given cities (views must outlive the index). The default
  /// constructor indexes the embedded world table.
  CityIndex();
  explicit CityIndex(std::span<const City> cities);

  /// All cities whose centre lies inside `disk`, in descending population
  /// order.
  [[nodiscard]] std::vector<const City*> cities_in(
      const geodesy::Disk& disk) const;

  /// The most populated city inside `disk` — the paper's geolocation
  /// criterion ("picking the largest city in that disk"). Nullptr when the
  /// disk holds no known city.
  [[nodiscard]] const City* most_populated_in(const geodesy::Disk& disk) const;

  /// The city nearest to `point` (nullptr only for an empty index).
  /// Used to resolve simulator sites and to score geolocation error.
  [[nodiscard]] const City* nearest(const geodesy::GeoPoint& point) const;

  /// Case-sensitive lookup by exact name; nullptr when absent. Duplicate
  /// names resolve to the same city the original linear scan found (the
  /// first in ascending-latitude order).
  [[nodiscard]] const City* by_name(std::string_view name) const;

  [[nodiscard]] std::size_t size() const { return by_latitude_.size(); }

  // ---- Reference implementations (oracles; see header comment) ----------

  /// Original latitude-band scan of cities_in.
  [[nodiscard]] std::vector<const City*> cities_in_scan(
      const geodesy::Disk& disk) const;
  /// Original latitude-band scan of most_populated_in.
  [[nodiscard]] const City* most_populated_in_scan(
      const geodesy::Disk& disk) const;
  /// Original latitude-pruned linear scan of nearest.
  [[nodiscard]] const City* nearest_scan(const geodesy::GeoPoint& point) const;
  /// Original linear scan of by_name.
  [[nodiscard]] const City* by_name_scan(std::string_view name) const;

 private:
  template <typename Visitor>  // Visitor(const City&)
  void visit_band(const geodesy::Disk& disk, Visitor&& visit) const;

  /// Grid-pruned candidate sweep with the band scan's exact membership
  /// test (band arithmetic + chord-space contains with scalar fallback).
  /// Visits positions into by_latitude_, unordered.
  template <typename Visitor>  // Visitor(std::uint32_t position)
  void visit_grid(const geodesy::Disk& disk, Visitor&& visit) const;

  std::vector<const City*> by_latitude_;  // ascending latitude

  // Kernel caches, all aligned with by_latitude_ positions.
  std::vector<geodesy::GeoPoint> locations_;
  std::vector<geodesy::Unit3> units_;
  geodesy::LatLonGrid grid_;
  // SoA coordinates in grid-slot order (grid_.row_indices interleaves with
  // these by slot), for batch-haversine scoring in nearest().
  std::vector<double> slot_lat_deg_;
  std::vector<double> slot_lon_deg_;
  std::unordered_map<std::string_view, const City*> name_map_;
};

/// Process-wide index over the embedded world-city table.
const CityIndex& world_index();

}  // namespace anycast::geo
