// City records: the side-channel that disambiguates latency noise.
//
// iGreedy geolocates a replica inside its smallest latency disk by a
// maximum-likelihood classifier biased toward city population; the paper
// (Sec. 2.1) finds population alone discriminates ~75% of cases, so the
// classifier reduces to "largest city in the disk". This module carries the
// embedded world-city table used for that step.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "anycast/geodesy/geopoint.hpp"

namespace anycast::geo {

/// One city: identity, location, and the population signal used by the
/// geolocation classifier. Metropolitan-area population, since PoPs serve
/// metro regions.
struct City {
  std::string_view name;
  std::string_view country;  // ISO 3166-1 alpha-2
  double latitude_deg = 0.0;
  double longitude_deg = 0.0;
  std::uint64_t population = 0;

  [[nodiscard]] geodesy::GeoPoint location() const {
    return geodesy::GeoPoint(latitude_deg, longitude_deg);
  }

  [[nodiscard]] std::string display() const {
    return std::string(name) + ", " + std::string(country);
  }
};

}  // namespace anycast::geo
