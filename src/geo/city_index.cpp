#include "anycast/geo/city_index.hpp"

#include <algorithm>
#include <limits>

#include "anycast/geo/city_data.hpp"
#include "anycast/geodesy/geopoint.hpp"

namespace anycast::geo {

namespace {

// Kilometres per degree of latitude (constant on the sphere).
constexpr double kKmPerLatDegree = 111.195;

}  // namespace

CityIndex::CityIndex() : CityIndex(world_cities()) {}

CityIndex::CityIndex(std::span<const City> cities) {
  by_latitude_.reserve(cities.size());
  for (const City& city : cities) by_latitude_.push_back(&city);
  std::sort(by_latitude_.begin(), by_latitude_.end(),
            [](const City* a, const City* b) {
              return a->latitude_deg < b->latitude_deg;
            });
}

template <typename Visitor>
void CityIndex::visit_band(const geodesy::Disk& disk, Visitor&& visit) const {
  // A disk of radius r km can only contain cities within r/111 degrees of
  // latitude of its centre; binary-search that band, then test exactly.
  const double band_deg = disk.radius_km() / kKmPerLatDegree;
  const double lo = disk.center().latitude() - band_deg;
  const double hi = disk.center().latitude() + band_deg;
  auto first = std::lower_bound(
      by_latitude_.begin(), by_latitude_.end(), lo,
      [](const City* c, double v) { return c->latitude_deg < v; });
  for (; first != by_latitude_.end() && (*first)->latitude_deg <= hi;
       ++first) {
    if (disk.contains((*first)->location())) visit(**first);
  }
}

std::vector<const City*> CityIndex::cities_in(
    const geodesy::Disk& disk) const {
  std::vector<const City*> out;
  visit_band(disk, [&](const City& city) { out.push_back(&city); });
  std::sort(out.begin(), out.end(), [](const City* a, const City* b) {
    return a->population > b->population;
  });
  return out;
}

const City* CityIndex::most_populated_in(const geodesy::Disk& disk) const {
  const City* best = nullptr;
  visit_band(disk, [&](const City& city) {
    if (best == nullptr || city.population > best->population) best = &city;
  });
  return best;
}

const City* CityIndex::nearest(const geodesy::GeoPoint& point) const {
  const City* best = nullptr;
  double best_km = std::numeric_limits<double>::infinity();
  for (const City* city : by_latitude_) {
    // Latitude pruning: if even the latitude difference alone exceeds the
    // best distance so far, the city cannot win.
    const double lat_gap_km =
        std::abs(city->latitude_deg - point.latitude()) * kKmPerLatDegree;
    if (lat_gap_km >= best_km) continue;
    const double km = geodesy::distance_km(city->location(), point);
    if (km < best_km) {
      best_km = km;
      best = city;
    }
  }
  return best;
}

const City* CityIndex::by_name(std::string_view name) const {
  for (const City* city : by_latitude_) {
    if (city->name == name) return city;
  }
  return nullptr;
}

const CityIndex& world_index() {
  static const CityIndex index;
  return index;
}

}  // namespace anycast::geo
