#include "anycast/geo/city_index.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "anycast/geo/city_data.hpp"
#include "anycast/geodesy/geopoint.hpp"

namespace anycast::geo {

namespace {

// Kilometres per degree of latitude (constant on the sphere).
constexpr double kKmPerLatDegree = 111.195;

/// Slightly BELOW the true pi*R/180 = 111.19493 km/deg, so gap*floor is a
/// strict lower bound on any great-circle distance spanning that latitude
/// gap — safe for pruning rows in nearest().
constexpr double kKmPerLatDegreeFloor = 111.194;

/// Grid cell edge for the city table (~480 cities; 36x72 cells keeps rows
/// a handful of cities while staying coarse enough that typical latency
/// disks touch few rows).
constexpr double kCityCellDeg = 5.0;

}  // namespace

CityIndex::CityIndex() : CityIndex(world_cities()) {}

CityIndex::CityIndex(std::span<const City> cities) {
  by_latitude_.reserve(cities.size());
  for (const City& city : cities) by_latitude_.push_back(&city);
  std::sort(by_latitude_.begin(), by_latitude_.end(),
            [](const City* a, const City* b) {
              return a->latitude_deg < b->latitude_deg;
            });

  locations_.reserve(by_latitude_.size());
  units_.reserve(by_latitude_.size());
  name_map_.reserve(by_latitude_.size());
  for (const City* city : by_latitude_) {
    locations_.push_back(city->location());
    units_.push_back(geodesy::unit_vector(locations_.back()));
    // emplace keeps the first occurrence, so duplicate names resolve to
    // the same city the linear by_name scan finds.
    name_map_.emplace(city->name, city);
  }

  grid_ = geodesy::LatLonGrid(locations_, kCityCellDeg);
  slot_lat_deg_.resize(by_latitude_.size());
  slot_lon_deg_.resize(by_latitude_.size());
  for (std::size_t row = 0; row < grid_.rows(); ++row) {
    const std::size_t base = grid_.row_offset(row);
    const auto row_positions = grid_.row_indices(row);
    for (std::size_t k = 0; k < row_positions.size(); ++k) {
      slot_lat_deg_[base + k] = by_latitude_[row_positions[k]]->latitude_deg;
      slot_lon_deg_[base + k] = by_latitude_[row_positions[k]]->longitude_deg;
    }
  }
}

template <typename Visitor>
void CityIndex::visit_band(const geodesy::Disk& disk, Visitor&& visit) const {
  // A disk of radius r km can only contain cities within r/111 degrees of
  // latitude of its centre; binary-search that band, then test exactly.
  const double band_deg = disk.radius_km() / kKmPerLatDegree;
  const double lo = disk.center().latitude() - band_deg;
  const double hi = disk.center().latitude() + band_deg;
  auto first = std::lower_bound(
      by_latitude_.begin(), by_latitude_.end(), lo,
      [](const City* c, double v) { return c->latitude_deg < v; });
  for (; first != by_latitude_.end() && (*first)->latitude_deg <= hi;
       ++first) {
    if (disk.contains((*first)->location())) visit(**first);
  }
}

template <typename Visitor>
void CityIndex::visit_grid(const geodesy::Disk& disk, Visitor&& visit) const {
  // The grid visit is a superset of the within-radius set; membership must
  // then match the band scan exactly, which means reapplying BOTH of its
  // tests: the [lo, hi] latitude band (its 111.195 constant sits a hair
  // ABOVE the true km-per-degree, so the band very slightly undercovers
  // true containment — a contained city outside the band is excluded by
  // the scan and must be excluded here too) and the containment predicate
  // (chord-space with scalar fallback, bit-identical to Disk::contains).
  const double band_deg = disk.radius_km() / kKmPerLatDegree;
  const double lo = disk.center().latitude() - band_deg;
  const double hi = disk.center().latitude() + band_deg;
  const geodesy::Unit3 ucenter = geodesy::unit_vector(disk.center());
  const geodesy::CapTrig cap = geodesy::cap_trig(disk.radius_km());
  grid_.visit_within(
      disk.center(), disk.radius_km(), [&](std::uint32_t position) {
        const double lat = by_latitude_[position]->latitude_deg;
        if (lat < lo || lat > hi) return;
        if (geodesy::cap_contains(ucenter, units_[position], cap,
                                  disk.center(), locations_[position])) {
          visit(position);
        }
      });
}

std::vector<const City*> CityIndex::cities_in(
    const geodesy::Disk& disk) const {
  // The population sort below is unstable, so with tied populations its
  // result depends on the input sequence: feed it the band scan's exact
  // visit order, which is ascending by_latitude_ position.
  std::vector<std::uint32_t> positions;
  visit_grid(disk, [&](std::uint32_t position) { positions.push_back(position); });
  std::sort(positions.begin(), positions.end());
  std::vector<const City*> out;
  out.reserve(positions.size());
  for (const std::uint32_t position : positions) {
    out.push_back(by_latitude_[position]);
  }
  std::sort(out.begin(), out.end(), [](const City* a, const City* b) {
    return a->population > b->population;
  });
  return out;
}

const City* CityIndex::most_populated_in(const geodesy::Disk& disk) const {
  // The band scan keeps the FIRST maximum in ascending-latitude order
  // (strict >); order-free equivalent: lexicographic max of
  // (population, -position).
  std::uint32_t best_position = 0;
  const City* best = nullptr;
  visit_grid(disk, [&](std::uint32_t position) {
    const City* city = by_latitude_[position];
    if (best == nullptr || city->population > best->population ||
        (city->population == best->population && position < best_position)) {
      best = city;
      best_position = position;
    }
  });
  return best;
}

const City* CityIndex::nearest(const geodesy::GeoPoint& point) const {
  if (by_latitude_.empty()) return nullptr;
  // Expanding row search out from the point's latitude row. Each visited
  // row is scored with the batch haversine (bit-identical to the scalar
  // distance_km); the winner is the lexicographic minimum of
  // (distance, by_latitude_ position), which is what the linear scan's
  // strict `km < best` update over ascending positions returns. A row is
  // skipped only when its latitude gap alone — a strict lower bound on
  // every distance in the row, via the floor constant — beats the current
  // best strictly, so no potential winner (or tie) is ever pruned.
  thread_local std::vector<double> row_km;
  const std::size_t center_row = grid_.row_of(point.latitude());
  double best_km = std::numeric_limits<double>::infinity();
  std::uint32_t best_position = std::numeric_limits<std::uint32_t>::max();
  const City* best = nullptr;

  const auto row_bound_km = [&](std::size_t row) {
    double gap_deg = 0.0;
    if (point.latitude() < grid_.row_min_lat(row)) {
      gap_deg = grid_.row_min_lat(row) - point.latitude();
    } else if (point.latitude() > grid_.row_max_lat(row)) {
      gap_deg = point.latitude() - grid_.row_max_lat(row);
    }
    return gap_deg * kKmPerLatDegreeFloor;
  };

  const auto score_row = [&](std::size_t row) {
    const auto row_positions = grid_.row_indices(row);
    if (row_positions.empty()) return;
    const std::size_t base = grid_.row_offset(row);
    row_km.resize(row_positions.size());
    geodesy::batch_distance_km(
        point,
        std::span<const double>(slot_lat_deg_)
            .subspan(base, row_positions.size()),
        std::span<const double>(slot_lon_deg_)
            .subspan(base, row_positions.size()),
        row_km);
    for (std::size_t k = 0; k < row_positions.size(); ++k) {
      const double km = row_km[k];
      const std::uint32_t position = row_positions[k];
      if (km < best_km || (km == best_km && position < best_position)) {
        best_km = km;
        best_position = position;
        best = by_latitude_[position];
      }
    }
  };

  score_row(center_row);
  std::ptrdiff_t down = static_cast<std::ptrdiff_t>(center_row) - 1;
  std::size_t up = center_row + 1;
  bool down_alive = down >= 0;
  bool up_alive = up < grid_.rows();
  while (down_alive || up_alive) {
    if (down_alive) {
      const auto row = static_cast<std::size_t>(down);
      if (best != nullptr && row_bound_km(row) > best_km) {
        down_alive = false;  // gaps only grow further down
      } else {
        score_row(row);
        down_alive = --down >= 0;
      }
    }
    if (up_alive) {
      if (best != nullptr && row_bound_km(up) > best_km) {
        up_alive = false;  // gaps only grow further up
      } else {
        score_row(up);
        up_alive = ++up < grid_.rows();
      }
    }
  }
  return best;
}

const City* CityIndex::by_name(std::string_view name) const {
  const auto it = name_map_.find(name);
  return it == name_map_.end() ? nullptr : it->second;
}

// ---- Reference implementations (pre-kernel originals, kept as oracles) -----

std::vector<const City*> CityIndex::cities_in_scan(
    const geodesy::Disk& disk) const {
  std::vector<const City*> out;
  visit_band(disk, [&](const City& city) { out.push_back(&city); });
  std::sort(out.begin(), out.end(), [](const City* a, const City* b) {
    return a->population > b->population;
  });
  return out;
}

const City* CityIndex::most_populated_in_scan(
    const geodesy::Disk& disk) const {
  const City* best = nullptr;
  visit_band(disk, [&](const City& city) {
    if (best == nullptr || city.population > best->population) best = &city;
  });
  return best;
}

const City* CityIndex::nearest_scan(const geodesy::GeoPoint& point) const {
  const City* best = nullptr;
  double best_km = std::numeric_limits<double>::infinity();
  for (const City* city : by_latitude_) {
    // Latitude pruning: if even the latitude difference alone exceeds the
    // best distance so far, the city cannot win.
    const double lat_gap_km =
        std::abs(city->latitude_deg - point.latitude()) * kKmPerLatDegree;
    if (lat_gap_km >= best_km) continue;
    const double km = geodesy::distance_km(city->location(), point);
    if (km < best_km) {
      best_km = km;
      best = city;
    }
  }
  return best;
}

const City* CityIndex::by_name_scan(std::string_view name) const {
  for (const City* city : by_latitude_) {
    if (city->name == name) return city;
  }
  return nullptr;
}

const CityIndex& world_index() {
  static const CityIndex index;
  return index;
}

}  // namespace anycast::geo
