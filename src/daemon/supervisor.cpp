#include "anycast/daemon/supervisor.hpp"

#include <algorithm>

namespace anycast::daemon {

std::string_view to_string(RoundHealth health) {
  switch (health) {
    case RoundHealth::kHealthy: return "healthy";
    case RoundHealth::kDegraded: return "degraded";
  }
  return "unknown";
}

census::FastPingConfig Supervisor::tuned(
    const census::FastPingConfig& base) const {
  census::FastPingConfig cfg = base;
  if (escalation_ == 0) return cfg;
  cfg.retry_max_attempts =
      base.retry_max_attempts + escalation_ * config_.retry_step;
  if (base.retry_probe_budget > 0) {
    cfg.retry_probe_budget =
        base.retry_probe_budget * static_cast<std::uint64_t>(escalation_ + 1);
  }
  if (base.vp_deadline_hours > 0.0) {
    // Give stragglers more rope when the platform is struggling: cutting
    // them off is exactly what drives coverage further down.
    cfg.vp_deadline_hours =
        base.vp_deadline_hours * (1.0 + 0.25 * escalation_);
  }
  return cfg;
}

RoundVerdict Supervisor::assess(int round,
                                const census::CensusSummary& summary) const {
  RoundVerdict verdict;
  verdict.round = round;
  verdict.completed = summary.outcome_count(census::VpOutcome::kCompleted);
  verdict.active = summary.active_vps;
  verdict.configured = summary.vp_outcomes.size();
  verdict.escalation = escalation_;
  verdict.coverage =
      verdict.active == 0
          ? 0.0
          : static_cast<double>(verdict.completed) /
                static_cast<double>(verdict.active);
  verdict.health = verdict.coverage + 1e-12 >= config_.coverage_floor
                       ? RoundHealth::kHealthy
                       : RoundHealth::kDegraded;
  return verdict;
}

void Supervisor::observe(const RoundVerdict& verdict) {
  if (verdict.health == RoundHealth::kDegraded) {
    escalation_ = std::min(config_.max_escalation, escalation_ + 1);
  } else {
    escalation_ = std::max(0, escalation_ - 1);
  }
}

}  // namespace anycast::daemon
