// Round supervision for the continuous census daemon.
//
// A weeks-long measurement campaign does not fail loudly — it degrades:
// VPs quarantine, regions go dark, stragglers get cut off, and a round
// that silently lost a third of its platform would poison every
// longitudinal baseline it touches. The supervisor turns each round's
// census summary into an explicit health verdict against a coverage
// floor, and adapts the prober between rounds: degraded rounds escalate
// the per-VP retry/backoff budgets (the platform is struggling — work
// harder per target), healthy rounds relax them back toward the base
// configuration. Verdicts are pure functions of the summary, so a
// restarted daemon replays its persisted verdict history and lands on
// exactly the escalation level the killed process was at.
#pragma once

#include <cstdint>
#include <string_view>

#include "anycast/census/census.hpp"

namespace anycast::daemon {

enum class RoundHealth : std::uint8_t {
  kHealthy,   // coverage at or above the floor; usable as a baseline
  kDegraded,  // too many lost VPs; excluded from drift baselines
};

std::string_view to_string(RoundHealth health);

struct SupervisorConfig {
  /// Minimum fraction of active (non-skipped) VPs that must complete
  /// their walk for the round to count as healthy. The paper's censuses
  /// kept 240-269 of ~270 alive nodes — a round below the floor looks
  /// nothing like the platform the baselines were built on.
  double coverage_floor = 0.80;
  /// Escalation ladder cap: how many degraded rounds in a row can raise
  /// the retry budgets before they saturate.
  int max_escalation = 3;
  /// Extra retry passes added per escalation level.
  int retry_step = 1;
};

/// One round's health assessment.
struct RoundVerdict {
  int round = 0;
  RoundHealth health = RoundHealth::kHealthy;
  double coverage = 0.0;        // completed / active
  std::size_t completed = 0;    // VPs that finished their walk
  std::size_t active = 0;       // VPs up for the round (availability coin)
  std::size_t configured = 0;   // platform size
  int escalation = 0;           // level the round was probed at
};

class Supervisor {
 public:
  explicit Supervisor(SupervisorConfig config = {}) : config_(config) {}

  [[nodiscard]] const SupervisorConfig& config() const { return config_; }
  [[nodiscard]] int escalation() const { return escalation_; }

  /// The prober configuration for the next round at the current
  /// escalation level: more retry passes, a proportionally larger retry
  /// budget, and a longer straggler deadline. Level 0 returns `base`
  /// unchanged.
  [[nodiscard]] census::FastPingConfig tuned(
      const census::FastPingConfig& base) const;

  /// Judges one completed round against the coverage floor. Pure: does
  /// not advance the escalation state (call `observe` for that), so a
  /// restart can re-judge history without side effects.
  [[nodiscard]] RoundVerdict assess(int round,
                                    const census::CensusSummary& summary) const;

  /// Folds a verdict into the escalation state: degraded rounds climb
  /// one level (saturating at max_escalation), healthy rounds step back
  /// down toward zero.
  void observe(const RoundVerdict& verdict);

 private:
  SupervisorConfig config_;
  int escalation_ = 0;
};

}  // namespace anycast::daemon
