// The continuous census daemon (watch mode).
//
// Sec. 5 of the paper closes with the longitudinal program: "taking
// periodic censuses and analyzing the time evolution over longer
// timescales would allow to track evolution of IP anycast deployments" —
// and periodic scanning for hijack alarms. `WatchDaemon` is that loop,
// built for the failures a long campaign actually hits. Each round runs a
// full census through the PR 1 checkpoint/resume machinery (census_id ==
// round number, so a killed daemon restarted over the same directory
// resumes the interrupted round mid-walk), diffs the frozen CSR snapshot
// row-by-row against the previous round, re-analyzes only the dirty rows,
// and emits longitudinal semantic events — replica churn, catchment
// shifts, suspected hijacks — through the journal, keeping the committed
// event stream byte-identical across thread counts.
//
// Robustness semantics (DESIGN.md §13):
//   - Every round gets a supervisor verdict against a coverage floor.
//     Degraded rounds are analyzed but emit no longitudinal events and
//     never become drift baselines or hijack references — a half-dark
//     platform produces "changes" that are artifacts of the darkness.
//   - The fastping seed is fixed across rounds: a static world replays
//     bit-identical rows, so every dirty row is signal (chaos, churn, or
//     an escalation-induced retry change), not per-round noise.
//   - Progress is persisted to `watch.state` (atomic tmp+rename) after
//     each round: verdict history (replayed to restore the escalation
//     ladder), per-round quarantined VPs (so baseline matrices can be
//     re-collated from checkpoints without re-probing), and the
//     accumulated blacklist.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "anycast/analysis/diff.hpp"
#include "anycast/analysis/hijack.hpp"
#include "anycast/census/census.hpp"
#include "anycast/census/hitlist.hpp"
#include "anycast/census/sharded.hpp"
#include "anycast/daemon/supervisor.hpp"
#include "anycast/net/fault.hpp"
#include "anycast/obs/slo.hpp"

namespace anycast::concurrency {
class ThreadPool;
}

namespace anycast::serving {
class SnapshotStore;
}

namespace anycast::daemon {

struct WatchConfig {
  int rounds = 3;                   // total rounds the campaign should reach
  std::filesystem::path out_dir;    // checkpoints + watch.state
  std::size_t min_vps = 2;
  std::size_t min_replica_delta = 1;

  census::FastPingConfig fastping;  // seed is shared by every round
  SupervisorConfig supervisor;

  /// Data-plane shape for every round's matrix (shard size, RSS budget,
  /// spill directory). The defaults reproduce the monolithic plane; any
  /// setting leaves the committed journal stream and semantic metrics
  /// byte-identical (DESIGN.md §15).
  census::DataPlaneConfig data_plane;

  /// Chaos: when enabled, each round probes under `chaos` re-seeded per
  /// round (hash of spec seed and round number), so outages and flaps
  /// move around while staying replayable.
  bool chaos_enabled = false;
  net::FaultSpec chaos;
  /// Staged hijack: the spec's hijack fields only activate from this
  /// round on, so earlier healthy rounds establish the unicast reference.
  int hijack_from_round = 3;

  /// World churn: deterministically grow/shrink/move one deployment
  /// prefix's replica set before each round from round 2 on.
  bool churn = false;
  std::uint64_t churn_seed = 77;

  /// Watchdog drill: abort round N mid-way — half the platform probed and
  /// checkpointed, no state commit — and exit with kAbortedExitCode, as a
  /// deterministic stand-in for kill -9. A restart over the same out_dir
  /// resumes the half-done round.
  int die_at_round = 0;  // 0 = never

  /// SLO objectives (parsed from `--slo`), installed into the global
  /// telemetry plane at run() start. The availability objective is fed
  /// per round from the verdict's completed/active counts — semantic
  /// inputs, so its violation/recovery journal events are kSemantic and
  /// drift-gated like every other round event. Latency objectives are
  /// evaluated by the telemetry ticker (kTiming). Empty = no tracking,
  /// no events; burn windows restart with the process on resume.
  std::vector<obs::SloObjective> slo;

  /// When non-null, every committed round's frozen matrix + outcomes are
  /// published here as an immutable SnapshotView (id = round number,
  /// hitlist-indexed). The swap is an atomic epoch bump: readers serving
  /// queries mid-round keep their pinned epoch, the next acquire sees the
  /// new round — the census never stalls a query and vice versa.
  serving::SnapshotStore* serve_store = nullptr;
};

/// Exit code the CLI maps a watchdog abort to (BSD EX_SOFTWARE).
inline constexpr int kAbortedExitCode = 70;

/// What one round produced (in this process — resumed campaigns only
/// record the rounds they ran).
struct RoundRecord {
  RoundVerdict verdict;
  std::size_t vps_reused = 0;   // checkpoints inherited from a killed run
  std::size_t vps_rerun = 0;
  bool resumed = false;         // round continued from partial checkpoints
  std::size_t dirty = 0;        // rows re-analyzed (vs previous round)
  std::size_t anycast = 0;      // anycast /24s after this round
  std::size_t churn_events = 0;
  std::size_t hijack_alarms = 0;
};

struct WatchResult {
  std::vector<RoundRecord> rounds;
  int rounds_completed = 0;  // campaign total, including prior processes
  int exit_code = 0;         // kAbortedExitCode after a watchdog abort
  std::string error;         // nonempty on fatal error (exit_code != 0)
};

class WatchDaemon {
 public:
  /// `internet`, `vps`, `cities`, and `hitlist` must outlive the daemon.
  /// `internet` is mutated between rounds when `config.churn` is set.
  WatchDaemon(net::SimulatedInternet& internet,
              std::span<const net::VantagePoint> vps,
              const geo::CityIndex& cities, const census::Hitlist& hitlist,
              WatchConfig config);

  /// Runs (or resumes) the campaign up to `config.rounds` rounds.
  WatchResult run(concurrency::ThreadPool* pool = nullptr);

 private:
  struct PersistedState;

  [[nodiscard]] std::optional<net::FaultPlan> plan_for_round(int round) const;
  void apply_churn(int round);
  [[nodiscard]] census::ShardedCensusMatrix collate_round(
      int round, std::span<const std::uint32_t> quarantined) const;
  bool save_state(std::string* error) const;
  bool load_state(PersistedState* state, std::string* error) const;
  void prune_checkpoints() const;

  net::SimulatedInternet& internet_;
  std::span<const net::VantagePoint> vps_;
  const geo::CityIndex& cities_;
  const census::Hitlist& hitlist_;
  WatchConfig config_;

  analysis::CensusAnalyzer analyzer_;
  analysis::HijackMonitor monitor_;
  Supervisor supervisor_;
  census::Greylist blacklist_;
  int churn_applied_ = 1;  // highest round whose world toggle is in effect
  std::vector<RoundVerdict> verdicts_;  // committed rounds, in order
  std::vector<std::vector<std::uint32_t>> quarantined_;  // per round

  // Previous committed round (incremental-analysis input).
  int prev_round_ = 0;  // 0 = none yet
  census::ShardedCensusMatrix prev_matrix_;
  std::vector<analysis::TargetOutcome> prev_outcomes_;

  // Last healthy round (drift baseline for churn/shift events).
  int baseline_round_ = 0;
  census::ShardedCensusMatrix baseline_matrix_;
  analysis::CensusSnapshot baseline_snapshot_;

  // First healthy round (hijack reference).
  int reference_round_ = 0;
};

}  // namespace anycast::daemon
