#include "anycast/daemon/watch.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "anycast/analysis/incremental.hpp"
#include "anycast/census/resume.hpp"
#include "anycast/census/storage.hpp"
#include "anycast/obs/journal.hpp"
#include "anycast/obs/latency.hpp"
#include "anycast/obs/telemetry.hpp"
#include "anycast/rng/distributions.hpp"
#include "anycast/serving/snapshot.hpp"
#include "anycast/serving/store.hpp"

namespace anycast::daemon {
namespace {

constexpr std::string_view kStateMagic = "anycastd-watch v1";
constexpr std::uint64_t kRoundSeedTag = 0xFA;

std::filesystem::path state_path(const std::filesystem::path& dir) {
  return dir / "watch.state";
}

int coverage_permille(double coverage) {
  return static_cast<int>(coverage * 1000.0 + 0.5);
}

}  // namespace

struct WatchDaemon::PersistedState {
  int rounds_completed = 0;
  std::vector<RoundVerdict> verdicts;
  std::vector<std::vector<std::uint32_t>> quarantined;  // [round - 1]
  std::vector<std::pair<std::uint32_t, int>> blacklist;
};

WatchDaemon::WatchDaemon(net::SimulatedInternet& internet,
                         std::span<const net::VantagePoint> vps,
                         const geo::CityIndex& cities,
                         const census::Hitlist& hitlist, WatchConfig config)
    : internet_(internet),
      vps_(vps),
      cities_(cities),
      hitlist_(hitlist),
      config_(std::move(config)),
      analyzer_(vps, cities),
      monitor_(vps, cities),
      supervisor_(config_.supervisor) {}

std::optional<net::FaultPlan> WatchDaemon::plan_for_round(int round) const {
  if (!config_.chaos_enabled) return std::nullopt;
  net::FaultSpec spec = config_.chaos;
  // Re-seed per round so the weather moves while staying replayable: a
  // restarted daemon derives the identical plan for the round it resumes.
  spec.seed = rng::hash_key(config_.chaos.seed,
                            static_cast<std::uint64_t>(round), kRoundSeedTag);
  if (round < config_.hijack_from_round) {
    // Staged: the attack starts later, so earlier healthy rounds can
    // establish the unicast reference the monitor alarms against.
    spec.hijack_targets.clear();
    spec.hijack_vp_fraction = 0.0;
  }
  return net::FaultPlan(spec);
}

void WatchDaemon::apply_churn(int round) {
  if (!config_.churn) return;
  // Apply every round's toggle exactly once, in round order. The toggles
  // are pure functions of (churn_seed, round), so a restarted daemon
  // replays rounds 2..k and lands on the same world the killed process
  // probed.
  for (; churn_applied_ < round; ++churn_applied_) {
    const int r = churn_applied_ + 1;
    const auto draw = [&](std::uint64_t tag) {
      return rng::hash_uniform01(rng::hash_key(
          config_.churn_seed, static_cast<std::uint64_t>(r), tag));
    };
    const auto deployments = internet_.deployments();
    if (deployments.empty()) return;
    // Pick a deployment with at least two sites (so a toggle moves a
    // replica instead of flattening a singleton), scanning forward from a
    // seeded start.
    const std::size_t start =
        static_cast<std::size_t>(draw(1) * static_cast<double>(
                                               deployments.size()));
    std::size_t dep = deployments.size();
    for (std::size_t i = 0; i < deployments.size(); ++i) {
      const std::size_t candidate = (start + i) % deployments.size();
      if (deployments[candidate].sites.size() >= 2 &&
          !deployments[candidate].prefix_site_masks.empty()) {
        dep = candidate;
        break;
      }
    }
    if (dep == deployments.size()) return;
    const std::size_t prefixes = deployments[dep].prefix_site_masks.size();
    const std::size_t prefix =
        static_cast<std::size_t>(draw(2) * static_cast<double>(prefixes));
    const std::size_t sites = deployments[dep].sites.size();
    const std::size_t site =
        static_cast<std::size_t>(draw(3) * static_cast<double>(sites));
    const std::uint64_t before =
        deployments[dep].prefix_site_masks[prefix];
    const std::uint64_t after = before ^ (std::uint64_t{1} << site);
    internet_.set_prefix_site_mask(dep, prefix, after);
    obs::Journal& j = obs::journal();
    if (j.recording()) {
      j.emit(obs::MetricClass::kSemantic, obs::Severity::kInfo,
             "watch.world", j.next_order(),
             {{"round", r},
              {"deployment", dep},
              {"prefix", prefix},
              {"site", site},
              {"mask_before", before},
              {"mask_after", after}});
    }
  }
}

census::ShardedCensusMatrix WatchDaemon::collate_round(
    int round, std::span<const std::uint32_t> quarantined) const {
  // A committed round's matrix is exactly the collation of its checkpoint
  // files minus the quarantined VPs' — the same reduction resume_census
  // performed when the round ran, so no re-probing (and no fault-plan or
  // blacklist-history replay) is needed to reconstruct it.
  std::vector<std::filesystem::path> paths;
  paths.reserve(vps_.size());
  for (const net::VantagePoint& vp : vps_) {
    if (std::find(quarantined.begin(), quarantined.end(), vp.id) !=
        quarantined.end()) {
      continue;
    }
    auto path = census::census_checkpoint_path(
        config_.out_dir, static_cast<std::uint32_t>(round), vp.id);
    std::error_code ec;
    if (std::filesystem::exists(path, ec)) paths.push_back(std::move(path));
  }
  census::CollateStats stats;
  return census::collate_census_files_sharded(paths, hitlist_.size(),
                                              config_.data_plane, &stats,
                                              true);
}

bool WatchDaemon::save_state(std::string* error) const {
  const auto path = state_path(config_.out_dir);
  const auto tmp = path.string() + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    *error = "cannot write " + tmp;
    return false;
  }
  std::fprintf(f, "%s\n", std::string(kStateMagic).c_str());
  std::fprintf(f, "rounds_completed %zu\n", verdicts_.size());
  for (const RoundVerdict& v : verdicts_) {
    std::fprintf(f, "verdict %d %s %d %zu %zu %zu %d\n", v.round,
                 std::string(to_string(v.health)).c_str(),
                 coverage_permille(v.coverage), v.completed, v.active,
                 v.configured, v.escalation);
  }
  for (std::size_t i = 0; i < quarantined_.size(); ++i) {
    for (const std::uint32_t vp : quarantined_[i]) {
      std::fprintf(f, "quarantined %zu %" PRIu32 "\n", i + 1, vp);
    }
  }
  for (const auto& [slash24, kind] : blacklist_.entries()) {
    std::fprintf(f, "blacklist %" PRIu32 " %d\n", slash24,
                 static_cast<int>(kind));
  }
  std::fprintf(f, "end\n");
  const bool ok = std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) {
    *error = "cannot flush " + tmp;
    return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    *error = "cannot rename " + tmp + ": " + ec.message();
    return false;
  }
  return true;
}

bool WatchDaemon::load_state(PersistedState* state,
                             std::string* error) const {
  const auto path = state_path(config_.out_dir);
  std::FILE* f = std::fopen(path.string().c_str(), "rb");
  if (f == nullptr) return true;  // fresh campaign
  char line[256];
  bool saw_magic = false, saw_end = false;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    const std::size_t len = std::strlen(line);
    if (len > 0 && line[len - 1] == '\n') line[len - 1] = '\0';
    if (!saw_magic) {
      if (kStateMagic != line) {
        *error = path.string() + ": not a watch state file";
        std::fclose(f);
        return false;
      }
      saw_magic = true;
      continue;
    }
    int round = 0, permille = 0, escalation = 0, kind = 0;
    std::size_t completed = 0, active = 0, configured = 0, qround = 0;
    std::uint32_t vp = 0, slash24 = 0;
    char health[16] = {};
    if (std::sscanf(line, "rounds_completed %d", &round) == 1) {
      state->rounds_completed = round;
    } else if (std::sscanf(line, "verdict %d %15s %d %zu %zu %zu %d", &round,
                           health, &permille, &completed, &active,
                           &configured, &escalation) == 7) {
      RoundVerdict v;
      v.round = round;
      v.health = std::string_view(health) == "degraded"
                     ? RoundHealth::kDegraded
                     : RoundHealth::kHealthy;
      v.coverage = static_cast<double>(permille) / 1000.0;
      v.completed = completed;
      v.active = active;
      v.configured = configured;
      v.escalation = escalation;
      state->verdicts.push_back(v);
      state->quarantined.resize(state->verdicts.size());
    } else if (std::sscanf(line, "quarantined %zu %" SCNu32, &qround, &vp) ==
               2) {
      if (qround == 0 || qround > state->quarantined.size()) {
        *error = path.string() + ": quarantine entry for unknown round";
        std::fclose(f);
        return false;
      }
      state->quarantined[qround - 1].push_back(vp);
    } else if (std::sscanf(line, "blacklist %" SCNu32 " %d", &slash24,
                           &kind) == 2) {
      state->blacklist.emplace_back(slash24, kind);
    } else if (std::string_view(line) == "end") {
      saw_end = true;
      break;
    } else {
      *error = path.string() + ": unrecognised line: " + line;
      std::fclose(f);
      return false;
    }
  }
  std::fclose(f);
  if (!saw_end) {
    *error = path.string() + ": truncated (missing end marker)";
    return false;
  }
  if (state->rounds_completed !=
      static_cast<int>(state->verdicts.size())) {
    *error = path.string() + ": verdict count disagrees with rounds_completed";
    return false;
  }
  return true;
}

void WatchDaemon::prune_checkpoints() const {
  // Keep only the rounds the daemon can still need: the incremental-
  // analysis predecessor, the drift baseline, and the hijack reference.
  // Everything older is dead weight a continuous daemon must not hoard.
  for (int round = 1; round < prev_round_; ++round) {
    if (round == baseline_round_ || round == reference_round_) continue;
    for (const net::VantagePoint& vp : vps_) {
      std::error_code ec;
      std::filesystem::remove(
          census::census_checkpoint_path(
              config_.out_dir, static_cast<std::uint32_t>(round), vp.id),
          ec);
    }
  }
}

WatchResult WatchDaemon::run(concurrency::ThreadPool* pool) {
  WatchResult result;
  std::error_code ec;
  std::filesystem::create_directories(config_.out_dir, ec);

  PersistedState state;
  if (!load_state(&state, &result.error)) {
    result.exit_code = 1;
    return result;
  }

  // Adopt the persisted campaign: blacklist, escalation ladder (verdict
  // replay), and the longitudinal anchors (previous round, drift
  // baseline, hijack reference) re-collated from kept checkpoints.
  verdicts_ = state.verdicts;
  quarantined_ = state.quarantined;
  for (const auto& [slash24, kind] : state.blacklist) {
    blacklist_.add(slash24, static_cast<net::ReplyKind>(kind));
  }
  for (const RoundVerdict& v : verdicts_) {
    supervisor_.observe(v);
    if (v.health == RoundHealth::kHealthy) {
      if (reference_round_ == 0) reference_round_ = v.round;
      baseline_round_ = v.round;
    }
  }
  prev_round_ = state.rounds_completed;
  if (prev_round_ > 0) {
    prev_matrix_ = collate_round(prev_round_, quarantined_[prev_round_ - 1]);
    prev_outcomes_ =
        analyzer_.analyze(prev_matrix_, hitlist_, config_.min_vps, pool);
  }
  if (baseline_round_ > 0) {
    if (baseline_round_ == prev_round_) {
      baseline_matrix_ = prev_matrix_;
      baseline_snapshot_ = analysis::CensusSnapshot(prev_outcomes_);
    } else {
      baseline_matrix_ =
          collate_round(baseline_round_, quarantined_[baseline_round_ - 1]);
      const auto outcomes =
          analyzer_.analyze(baseline_matrix_, hitlist_, config_.min_vps, pool);
      baseline_snapshot_ = analysis::CensusSnapshot(outcomes);
    }
  }
  if (reference_round_ > 0) {
    if (reference_round_ == prev_round_) {
      monitor_.set_reference(prev_matrix_, hitlist_, config_.min_vps);
    } else if (reference_round_ == baseline_round_) {
      monitor_.set_reference(baseline_matrix_, hitlist_, config_.min_vps);
    } else {
      const auto reference = collate_round(
          reference_round_, quarantined_[reference_round_ - 1]);
      monitor_.set_reference(reference, hitlist_, config_.min_vps);
    }
  }
  result.rounds_completed = state.rounds_completed;

  obs::Journal& j = obs::journal();
  // Install (or clear) the campaign's SLO objectives. Burn windows are
  // process-local: a resumed campaign restarts them, exactly like the
  // escalation ladder replay restores supervisor state but not wall time.
  obs::telemetry().set_slo(config_.slo);
  for (int round = state.rounds_completed + 1; round <= config_.rounds;
       ++round) {
    const auto round_start = std::chrono::steady_clock::now();
    const census::FastPingConfig cfg = supervisor_.tuned(config_.fastping);
    const auto plan = plan_for_round(round);
    const net::FaultPlan* faults = plan ? &*plan : nullptr;
    apply_churn(round);

    if (round == config_.die_at_round) {
      // Watchdog abort drill: probe and checkpoint half the platform
      // exactly as the round would have, then die without committing —
      // the deterministic stand-in for kill -9 mid-round. The restart's
      // resume_census inherits these checkpoints verbatim.
      std::size_t checkpointed = 0;
      for (std::size_t i = 0; i < vps_.size() / 2; ++i) {
        const net::VantagePoint& vp = vps_[i];
        if (!census::vp_available(vp, cfg)) continue;
        census::Greylist scratch;
        const auto walk = census::run_fastping(internet_, vp, hitlist_,
                                               blacklist_, scratch, cfg,
                                               faults);
        census::CensusFileHeader header{
            vp.id, static_cast<std::uint32_t>(round), 0};
        if (walk.outcome == census::VpOutcome::kCompleted) {
          header.flags |= census::kCensusFileComplete;
        }
        census::write_census_file(
            census::census_checkpoint_path(
                config_.out_dir, static_cast<std::uint32_t>(round), vp.id),
            header, walk.observations);
        ++checkpointed;
      }
      if (j.recording()) {
        j.emit(obs::MetricClass::kSemantic, obs::Severity::kWarn,
               "watch.abort", j.next_order(),
               {{"round", round}, {"vps_checkpointed", checkpointed}});
        j.commit();
      }
      result.exit_code = kAbortedExitCode;
      return result;
    }

    auto report = census::resume_census_sharded(
        internet_, vps_, hitlist_, blacklist_, cfg, config_.out_dir,
        static_cast<std::uint32_t>(round), config_.data_plane, faults, pool);
    const RoundVerdict verdict =
        supervisor_.assess(round, report.output.summary);

    RoundRecord record;
    record.verdict = verdict;
    record.vps_reused = report.vps_reused;
    record.vps_rerun = report.vps_rerun;
    record.resumed = report.vps_reused > 0;

    std::vector<analysis::TargetOutcome> outcomes;
    std::vector<std::uint32_t> dirty;
    const bool full = prev_round_ == 0;
    if (full) {
      outcomes = analyzer_.analyze(report.output.data, hitlist_,
                                   config_.min_vps, pool);
    } else {
      auto incremental = analysis::incremental_analyze(
          analyzer_, prev_outcomes_, prev_matrix_, report.output.data,
          hitlist_, config_.min_vps, pool);
      outcomes = std::move(incremental.outcomes);
      dirty = std::move(incremental.dirty);
    }
    record.dirty = dirty.size();
    record.anycast = outcomes.size();

    // Longitudinal events come only from healthy rounds: a half-dark
    // platform "loses" replicas that are artifacts of the darkness, and
    // feeding those into churn events or hijack alarms would be exactly
    // the baseline poisoning the supervisor exists to prevent.
    std::vector<analysis::PrefixChange> changes;
    std::vector<analysis::HijackAlarm> alarms;
    if (verdict.health == RoundHealth::kHealthy) {
      if (baseline_round_ > 0) {
        const analysis::CensusSnapshot now(outcomes);
        changes = analysis::diff_censuses(baseline_snapshot_, now,
                                          config_.min_replica_delta)
                      .changes;
      }
      if (reference_round_ > 0) {
        if (baseline_round_ == prev_round_ && !full) {
          // Common case: the previous round is the baseline, so the
          // incremental dirty set already is the changed-vs-baseline set.
          alarms = monitor_.scan_targets(report.output.data, hitlist_, dirty,
                                         config_.min_vps);
        } else if (baseline_round_ > 0) {
          // Degraded rounds sat between this round and the baseline: diff
          // against the baseline matrix so transitions that happened
          // while degraded are not missed.
          const auto changed =
              analysis::dirty_rows(baseline_matrix_, report.output.data, pool);
          alarms = monitor_.scan_targets(report.output.data, hitlist_,
                                         changed, config_.min_vps);
        }
      }
    }
    record.churn_events = changes.size();
    record.hijack_alarms = alarms.size();

    // Round telemetry: wall-clock latency plus the per-round window — all
    // kTiming, real operational data outside the semantic contract. The
    // availability SLO, by contrast, is fed from the verdict's semantic
    // counts, so its transitions below are drift-gated journal events.
    const double round_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - round_start)
            .count();
    obs::LatencyHisto::get("watch_round_ms", "ms",
                           "wall-clock per-round watch campaign latency")
        .record(static_cast<std::uint64_t>(round_ms));
    const census::CensusSummary& summary = report.output.summary;
    const double echo_rate =
        summary.probes_sent > 0
            ? static_cast<double>(summary.echo_replies) /
                  static_cast<double>(summary.probes_sent)
            : 0.0;
    obs::telemetry().note_round(
        static_cast<std::uint64_t>(round), verdict.coverage,
        static_cast<double>(verdict.completed),
        static_cast<double>(verdict.active),
        static_cast<double>(summary.probes_sent), echo_rate,
        static_cast<double>(record.dirty),
        static_cast<double>(record.anycast), round_ms);
    std::optional<obs::SloTracker::Transition> slo_transition;
    if (obs::telemetry().has_slo()) {
      slo_transition = obs::telemetry().observe_slo_ratio(
          "availability", static_cast<std::uint64_t>(round),
          verdict.completed, verdict.active - verdict.completed);
    }

    if (j.recording()) {
      j.emit(obs::MetricClass::kSemantic,
             verdict.health == RoundHealth::kDegraded ? obs::Severity::kWarn
                                                      : obs::Severity::kInfo,
             "watch.round", j.next_order(),
             {{"round", round},
              {"health", to_string(verdict.health)},
              {"coverage_permille", coverage_permille(verdict.coverage)},
              {"completed", verdict.completed},
              {"active", verdict.active},
              {"configured", verdict.configured},
              {"escalation", verdict.escalation},
              {"reused", record.vps_reused},
              {"rerun", record.vps_rerun},
              {"full", full},
              {"dirty", record.dirty},
              {"anycast", record.anycast}});
      for (const analysis::PrefixChange& change : changes) {
        j.emit(obs::MetricClass::kSemantic, obs::Severity::kInfo,
               "watch.churn", j.next_order(),
               {{"slash24", change.slash24_index},
                {"kind", to_string(change.kind)},
                {"before", change.replicas_before},
                {"after", change.replicas_after}});
      }
      for (const analysis::HijackAlarm& alarm : alarms) {
        j.emit(obs::MetricClass::kSemantic, obs::Severity::kWarn,
               "watch.hijack", j.next_order(),
               {{"slash24", alarm.slash24_index},
                {"target", alarm.target_index},
                {"origins", alarm.result.replicas.size()}});
      }
      if (slo_transition.has_value()) {
        // Availability burn windows are pure functions of the verdict
        // sequence, so this event is kSemantic: byte-identical across
        // thread counts, exactly like watch.round itself.
        j.emit(obs::MetricClass::kSemantic,
               slo_transition->entered ? obs::Severity::kWarn
                                       : obs::Severity::kInfo,
               slo_transition->entered ? "slo.violation" : "slo.recovered",
               j.next_order(),
               {{"objective", slo_transition->objective},
                {"round", round},
                {"burn_short_permille", slo_transition->burn_short_permille},
                {"burn_long_permille", slo_transition->burn_long_permille}});
      }
      j.commit();  // one deterministic batch per round
    }

    supervisor_.observe(verdict);
    verdicts_.push_back(verdict);
    std::vector<std::uint32_t> quarantined;
    for (const census::VpStatus& status : report.output.summary.vp_outcomes) {
      if (status.outcome == census::VpOutcome::kQuarantined) {
        quarantined.push_back(status.vp_id);
      }
    }
    quarantined_.push_back(std::move(quarantined));

    prev_round_ = round;
    prev_matrix_ = std::move(report.output.data);
    prev_outcomes_ = std::move(outcomes);
    if (config_.serve_store != nullptr) {
      // Publish a copy of this round's frozen state: the store owns its
      // snapshots outright so in-flight readers keep answering from old
      // epochs while the daemon mutates its own round-to-round state.
      config_.serve_store->publish(serving::SnapshotView::build(
          prev_matrix_, prev_outcomes_, static_cast<std::uint64_t>(round),
          &hitlist_));
    }
    if (verdict.health == RoundHealth::kHealthy) {
      baseline_round_ = round;
      baseline_matrix_ = prev_matrix_;
      baseline_snapshot_ = analysis::CensusSnapshot(prev_outcomes_);
      if (reference_round_ == 0) {
        reference_round_ = round;
        monitor_.set_reference(prev_matrix_, hitlist_, config_.min_vps);
      }
    }

    if (!save_state(&result.error)) {
      result.exit_code = 1;
      return result;
    }
    prune_checkpoints();
    result.rounds.push_back(record);
    result.rounds_completed = round;
  }
  return result;
}

}  // namespace anycast::daemon
