#include "anycast/ipaddr/prefix_table.hpp"

#include <algorithm>

namespace anycast::ipaddr {

PrefixTable::PrefixTable(std::vector<Route> routes) : routes_(std::move(routes)) {
  std::sort(routes_.begin(), routes_.end(),
            [](const Route& a, const Route& b) {
              if (a.prefix.network() != b.prefix.network()) {
                return a.prefix.network() < b.prefix.network();
              }
              return a.prefix.length() < b.prefix.length();
            });
  routes_.erase(std::unique(routes_.begin(), routes_.end(),
                            [](const Route& a, const Route& b) {
                              return a.prefix == b.prefix;
                            }),
                routes_.end());
}

std::optional<Route> PrefixTable::lookup(IPv4Address address) const {
  // A covering prefix of `address` at length L has network == address & mask,
  // so probe each length from most to least specific with a binary search.
  // 33 searches over a sorted vector beats a pointer-chasing trie for the
  // table sizes the simulator produces, and is exact.
  for (int length = 32; length >= 0; --length) {
    const Prefix candidate(address, length);
    auto it = std::lower_bound(
        routes_.begin(), routes_.end(), candidate,
        [](const Route& route, const Prefix& want) {
          if (route.prefix.network() != want.network()) {
            return route.prefix.network() < want.network();
          }
          return route.prefix.length() < want.length();
        });
    if (it != routes_.end() && it->prefix == candidate) return *it;
  }
  return std::nullopt;
}

std::uint64_t PrefixTable::covered_slash24_count() const {
  // Merge routes into disjoint /24 intervals and count them.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> intervals;
  intervals.reserve(routes_.size());
  for (const Route& route : routes_) {
    const std::uint32_t first = route.prefix.network().slash24_index();
    const std::uint32_t count = route.prefix.slash24_count();
    intervals.emplace_back(first, first + count);
  }
  std::sort(intervals.begin(), intervals.end());
  std::uint64_t total = 0;
  std::uint32_t high_water = 0;
  bool any = false;
  for (const auto& [begin, end] : intervals) {
    const std::uint32_t from = (!any || begin > high_water) ? begin
                               : high_water;
    if (end > from) total += end - from;
    if (!any || end > high_water) high_water = end;
    any = true;
  }
  return total;
}

}  // namespace anycast::ipaddr
