#include "anycast/ipaddr/ipv4.hpp"

#include <charconv>

namespace anycast::ipaddr {

std::optional<IPv4Address> IPv4Address::parse(std::string_view text) {
  std::uint32_t value = 0;
  const char* cursor = text.data();
  const char* const end = text.data() + text.size();
  for (int octet = 0; octet < 4; ++octet) {
    if (octet > 0) {
      if (cursor == end || *cursor != '.') return std::nullopt;
      ++cursor;
    }
    unsigned parsed = 0;
    auto [next, ec] = std::from_chars(cursor, end, parsed);
    if (ec != std::errc{} || next == cursor || parsed > 255) {
      return std::nullopt;
    }
    // Reject leading zeros like "01" which std::from_chars accepts.
    if (next - cursor > 1 && *cursor == '0') return std::nullopt;
    value = (value << 8) | parsed;
    cursor = next;
  }
  if (cursor != end) return std::nullopt;
  return IPv4Address(value);
}

std::string IPv4Address::to_string() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(octet(i));
  }
  return out;
}

}  // namespace anycast::ipaddr
