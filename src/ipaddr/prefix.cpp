#include "anycast/ipaddr/prefix.hpp"

#include <charconv>

namespace anycast::ipaddr {

std::optional<Prefix> Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto address = IPv4Address::parse(text.substr(0, slash));
  if (!address) return std::nullopt;
  const std::string_view len_text = text.substr(slash + 1);
  int length = -1;
  auto [next, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(),
                      length);
  if (ec != std::errc{} || next != len_text.data() + len_text.size() ||
      length < 0 || length > 32) {
    return std::nullopt;
  }
  return Prefix(*address, length);
}

std::vector<Prefix> Prefix::split_slash24() const {
  std::vector<Prefix> out;
  if (length_ >= 24) {
    out.push_back(slash24_of(network_));
    return out;
  }
  out.reserve(slash24_count());
  const std::uint32_t base = network_.value() >> 8;
  for (std::uint32_t i = 0; i < slash24_count(); ++i) {
    out.push_back(Prefix(IPv4Address((base + i) << 8), 24));
  }
  return out;
}

std::string Prefix::to_string() const {
  return network_.to_string() + "/" + std::to_string(length_);
}

}  // namespace anycast::ipaddr
