// IPv4 address value type.
//
// The census operates at /24 granularity (the minimum BGP-routable prefix
// length, per Sec. 3.1 of the paper), so this module provides cheap
// conversions between a /32 address, its covering /24, and the dense index
// of that /24 inside the 2^24-entry "slash-24 space" that the hitlist and
// the LFSR probe permutation both use.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace anycast::ipaddr {

/// An IPv4 address held as a host-order 32-bit integer.
class IPv4Address {
 public:
  constexpr IPv4Address() = default;
  constexpr explicit IPv4Address(std::uint32_t value) : value_(value) {}
  constexpr IPv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parses dotted-quad notation ("192.0.2.1"). Returns nullopt on any
  /// syntax error (missing octets, values > 255, stray characters).
  static std::optional<IPv4Address> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  /// Index of this address's covering /24 in the dense /24 space [0, 2^24).
  [[nodiscard]] constexpr std::uint32_t slash24_index() const {
    return value_ >> 8;
  }

  /// First address (".0") of the covering /24.
  [[nodiscard]] constexpr IPv4Address slash24_base() const {
    return IPv4Address(value_ & 0xFFFFFF00u);
  }

  /// Reconstructs an address from a /24 index plus a host byte.
  static constexpr IPv4Address from_slash24_index(std::uint32_t index,
                                                  std::uint8_t host = 1) {
    return IPv4Address((index << 8) | host);
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(IPv4Address, IPv4Address) = default;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace anycast::ipaddr
