// CIDR prefixes and /24 arithmetic.
//
// BGP practice ignores prefixes longer than /24 (RFC 4786 operational
// guidance cited in Sec. 3.1), so /24 is the census granularity: every
// announced prefix is split into the /24s it covers, each probed through a
// single representative address, and results are re-aggregated to announced
// prefixes a posteriori via longest-prefix match (see prefix_table.hpp).
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "anycast/ipaddr/ipv4.hpp"

namespace anycast::ipaddr {

/// A CIDR prefix such as 192.0.2.0/24. The network address is stored
/// canonicalised (host bits cleared).
class Prefix {
 public:
  constexpr Prefix() = default;

  /// Builds a prefix, clearing any host bits in `network`.
  /// `length` must be in [0, 32]; out-of-range lengths are clamped.
  constexpr Prefix(IPv4Address network, int length)
      : length_(length < 0 ? 0 : (length > 32 ? 32 : length)),
        network_(IPv4Address(network.value() & mask_for(length_))) {}

  /// Parses "a.b.c.d/len". Returns nullopt on syntax error or len > 32.
  static std::optional<Prefix> parse(std::string_view text);

  /// The covering /24 of an address, the census unit.
  static constexpr Prefix slash24_of(IPv4Address address) {
    return Prefix(address.slash24_base(), 24);
  }

  [[nodiscard]] constexpr IPv4Address network() const { return network_; }
  [[nodiscard]] constexpr int length() const { return length_; }
  [[nodiscard]] constexpr std::uint32_t mask() const {
    return mask_for(length_);
  }
  [[nodiscard]] constexpr IPv4Address last_address() const {
    return IPv4Address(network_.value() | ~mask());
  }
  [[nodiscard]] constexpr bool contains(IPv4Address address) const {
    return (address.value() & mask()) == network_.value();
  }
  [[nodiscard]] constexpr bool contains(const Prefix& other) const {
    return other.length_ >= length_ && contains(other.network_);
  }

  /// Number of /24 subnets this prefix covers (1 when length >= 24).
  [[nodiscard]] constexpr std::uint32_t slash24_count() const {
    return length_ >= 24 ? 1u : (1u << (24 - length_));
  }

  /// Enumerates the /24 prefixes covered by this prefix. A prefix longer
  /// than /24 yields its single covering /24 (paper: sub-/24 announcements
  /// are each tested once via their covering /24).
  [[nodiscard]] std::vector<Prefix> split_slash24() const;

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  static constexpr std::uint32_t mask_for(int length) {
    return length == 0 ? 0u : (~std::uint32_t{0} << (32 - length));
  }

  int length_ = 0;
  IPv4Address network_;
};

}  // namespace anycast::ipaddr
