// Longest-prefix-match table mapping addresses back to announced prefixes.
//
// The census probes at /24 granularity; mapping each anycast /24 back to the
// BGP prefix (and origin AS) that announced it happens a posteriori with
// this table (Sec. 3.1: "the mapping between /24 and announced prefixes is
// still possible a posteriori").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "anycast/ipaddr/prefix.hpp"

namespace anycast::ipaddr {

/// One routing-table entry: an announced prefix and an opaque payload
/// (typically the origin AS number).
struct Route {
  Prefix prefix;
  std::uint32_t origin_as = 0;
};

/// An immutable longest-prefix-match table built once from a route dump.
/// Lookup is a binary search over network addresses followed by a short
/// backward scan over candidate covering prefixes — adequate for the
/// O(10^4) route tables the simulator produces and free of per-node
/// allocation, unlike a trie.
class PrefixTable {
 public:
  PrefixTable() = default;
  explicit PrefixTable(std::vector<Route> routes);

  /// Longest-prefix match. Returns nullopt when no route covers `address`.
  [[nodiscard]] std::optional<Route> lookup(IPv4Address address) const;

  [[nodiscard]] std::size_t size() const { return routes_.size(); }

  /// Total number of /24s covered by all (deduplicated) routes; used for
  /// the hitlist-coverage cross-check of Sec. 3.1.
  [[nodiscard]] std::uint64_t covered_slash24_count() const;

 private:
  std::vector<Route> routes_;  // sorted by (network, length)
};

}  // namespace anycast::ipaddr
