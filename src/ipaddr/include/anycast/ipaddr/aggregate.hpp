// CIDR aggregation: from /24 runs back to announced prefixes.
//
// Deployments allocate contiguous runs of /24s but announce them as the
// minimal set of CIDR blocks (BGP aggregation, Sec. 3.1: "larger prefixes
// may be anycast only in part due to BGP prefix aggregation"). This module
// computes that minimal covering set, the inverse of Prefix::split_slash24.
#pragma once

#include <cstdint>
#include <vector>

#include "anycast/ipaddr/prefix.hpp"

namespace anycast::ipaddr {

/// Minimal set of CIDR prefixes exactly covering the /24-index range
/// [first_slash24, first_slash24 + count). Prefixes come out in address
/// order, each no longer than /24. Empty when count == 0.
std::vector<Prefix> aggregate_slash24_range(std::uint32_t first_slash24,
                                            std::uint32_t count);

/// Minimal CIDR cover of an arbitrary (unsorted, possibly duplicated)
/// set of /24 indices.
std::vector<Prefix> aggregate_slash24_set(std::vector<std::uint32_t> indices);

}  // namespace anycast::ipaddr
