#include "anycast/ipaddr/aggregate.hpp"

#include <algorithm>
#include <bit>

namespace anycast::ipaddr {

std::vector<Prefix> aggregate_slash24_range(std::uint32_t first_slash24,
                                            std::uint32_t count) {
  std::vector<Prefix> out;
  std::uint64_t cursor = first_slash24;
  std::uint64_t remaining = count;
  while (remaining > 0) {
    // The largest aligned power-of-two block starting at `cursor` that
    // fits in `remaining`.
    const std::uint64_t alignment =
        cursor == 0 ? (std::uint64_t{1} << 24)
                    : (cursor & (~cursor + 1));  // lowest set bit
    std::uint64_t block = std::min<std::uint64_t>(alignment,
                                                  std::bit_floor(remaining));
    const int length = 24 - std::countr_zero(block);
    out.push_back(Prefix(
        IPv4Address::from_slash24_index(static_cast<std::uint32_t>(cursor),
                                        0),
        length));
    cursor += block;
    remaining -= block;
  }
  return out;
}

std::vector<Prefix> aggregate_slash24_set(
    std::vector<std::uint32_t> indices) {
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  std::vector<Prefix> out;
  std::size_t i = 0;
  while (i < indices.size()) {
    std::size_t j = i;
    while (j + 1 < indices.size() && indices[j + 1] == indices[j] + 1) ++j;
    const auto run = aggregate_slash24_range(
        indices[i], static_cast<std::uint32_t>(j - i + 1));
    out.insert(out.end(), run.begin(), run.end());
    i = j + 1;
  }
  return out;
}

}  // namespace anycast::ipaddr
