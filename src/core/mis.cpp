#include "anycast/core/mis.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <numeric>
#include <vector>

#include "anycast/geodesy/chord.hpp"
#include "anycast/geodesy/grid.hpp"

namespace anycast::core {

// ---- Reference implementations ---------------------------------------------
//
// The pre-kernel scalar code, verbatim. These are the oracles the property
// tests pin the bitset/chord kernel against, and the "scalar" side of the
// bench_analysis_kernel duel. Any change here invalidates both.

namespace reference {
namespace {

/// Adjacency as vector<vector<bool>>; instances beyond a few hundred
/// disks never reach the exact solver.
std::vector<std::vector<bool>> intersection_matrix(
    std::span<const geodesy::Disk> disks) {
  const std::size_t n = disks.size();
  std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool overlap = disks[i].intersects(disks[j]);
      adj[i][j] = overlap;
      adj[j][i] = overlap;
    }
  }
  return adj;
}

struct BranchState {
  const std::vector<std::vector<bool>>* adj;
  std::vector<std::size_t> best;
  std::vector<std::size_t> current;

  void branch(std::vector<std::size_t>& candidates) {
    if (current.size() + candidates.size() <= best.size()) return;  // bound
    if (candidates.empty()) {
      if (current.size() > best.size()) best = current;
      return;
    }
    // Branch on the candidate with the most remaining conflicts first —
    // resolves dense cores early and tightens the bound.
    std::size_t pick_pos = 0;
    std::size_t max_degree = 0;
    for (std::size_t p = 0; p < candidates.size(); ++p) {
      std::size_t degree = 0;
      for (const std::size_t other : candidates) {
        if ((*adj)[candidates[p]][other]) ++degree;
      }
      if (degree >= max_degree) {
        max_degree = degree;
        pick_pos = p;
      }
    }
    const std::size_t pick = candidates[pick_pos];

    // Include `pick`.
    std::vector<std::size_t> reduced;
    reduced.reserve(candidates.size());
    for (const std::size_t other : candidates) {
      if (other != pick && !(*adj)[pick][other]) reduced.push_back(other);
    }
    current.push_back(pick);
    branch(reduced);
    current.pop_back();

    // Exclude `pick`.
    candidates.erase(candidates.begin() +
                     static_cast<std::ptrdiff_t>(pick_pos));
    branch(candidates);
  }
};

}  // namespace

std::vector<std::size_t> greedy_mis(std::span<const geodesy::Disk> disks) {
  std::vector<std::size_t> order(disks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return disks[a].radius_km() < disks[b].radius_km();
                   });
  std::vector<std::size_t> kept;
  for (const std::size_t candidate : order) {
    const bool clear = std::none_of(
        kept.begin(), kept.end(), [&](std::size_t held) {
          return disks[candidate].intersects(disks[held]);
        });
    if (clear) kept.push_back(candidate);
  }
  return kept;
}

std::vector<std::size_t> exact_mis(std::span<const geodesy::Disk> disks) {
  const auto adj = intersection_matrix(disks);
  BranchState state;
  state.adj = &adj;
  // Seed the bound with the greedy solution: exact can only improve on it.
  state.best = greedy_mis(disks);
  std::vector<std::size_t> candidates(disks.size());
  std::iota(candidates.begin(), candidates.end(), std::size_t{0});
  state.branch(candidates);
  std::sort(state.best.begin(), state.best.end());
  return state.best;
}

bool has_disjoint_pair(std::span<const geodesy::Disk> disks) {
  for (std::size_t i = 0; i < disks.size(); ++i) {
    for (std::size_t j = i + 1; j < disks.size(); ++j) {
      if (!disks[i].intersects(disks[j])) return true;
    }
  }
  return false;
}

}  // namespace reference

// ---- Chord/bitset kernel ---------------------------------------------------

namespace {

/// Per-thread scratch reused across every MIS call on the analyzer's
/// sharded target loop: trig caches, the flat bitset adjacency, and the
/// branch-and-bound candidate stack. Grow-only; no allocation on the hot
/// path after warm-up.
struct MisScratch {
  std::vector<geodesy::Unit3> units;
  std::vector<geodesy::CapTrig> caps;
  std::vector<geodesy::GeoPoint> centers;
  std::vector<std::size_t> order;
  std::vector<std::size_t> kept;
  std::vector<std::uint64_t> adj;    // n rows x words, row-major
  std::vector<std::uint64_t> stack;  // (n + 2) candidate sets for B&B

  void prepare(std::span<const geodesy::Disk> disks) {
    const std::size_t n = disks.size();
    units.resize(n);
    caps.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      units[i] = geodesy::unit_vector(disks[i].center());
      caps[i] = geodesy::cap_trig(disks[i].radius_km());
    }
  }

  /// Identical boolean to disks[i].intersects(disks[j]).
  [[nodiscard]] bool intersects(std::span<const geodesy::Disk> disks,
                                std::size_t i, std::size_t j) const {
    return geodesy::caps_intersect(units[i], units[j], caps[i], caps[j],
                                   disks[i].center(), disks[j].center());
  }
};

MisScratch& mis_scratch() {
  thread_local MisScratch scratch;
  return scratch;
}

/// Above this instance size the adjacency build prunes candidate pairs
/// with a LatLonGrid over disk centres instead of testing all n^2/2.
constexpr std::size_t kGridPruneThreshold = 96;

/// Builds the flat bitset intersection matrix into scratch.adj. The grid
/// prune is a strict superset filter (see grid.hpp), so the resulting
/// bits are identical to the all-pairs build.
void build_adjacency(std::span<const geodesy::Disk> disks,
                     MisScratch& scratch, std::size_t words) {
  const std::size_t n = disks.size();
  scratch.adj.assign(n * words, 0);
  const auto set_pair = [&](std::size_t i, std::size_t j) {
    scratch.adj[i * words + j / 64] |= std::uint64_t{1} << (j % 64);
    scratch.adj[j * words + i / 64] |= std::uint64_t{1} << (i % 64);
  };
  if (n < kGridPruneThreshold) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (scratch.intersects(disks, i, j)) set_pair(i, j);
      }
    }
    return;
  }
  double r_max = 0.0;
  scratch.centers.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    scratch.centers[i] = disks[i].center();
    r_max = std::max(r_max, disks[i].radius_km());
  }
  // Cell edge ~1/3 of a typical query radius: big enough that a query
  // touches O(10) cells, small enough to actually prune.
  const double cell_deg =
      std::clamp(2.0 * r_max / (3.0 * 111.195), 1.0, 30.0);
  const geodesy::LatLonGrid grid(scratch.centers, cell_deg);
  for (std::size_t i = 0; i < n; ++i) {
    grid.visit_within(
        scratch.centers[i], disks[i].radius_km() + r_max,
        [&](std::uint32_t j) {
          if (j > i && scratch.intersects(disks, i, j)) set_pair(i, j);
        });
  }
}

/// Branch-and-bound over bitset candidate sets. Replicates the reference
/// BranchState traversal exactly: the reference candidate list is always
/// sorted ascending (iota start, order-preserving erase/filter), its pick
/// is the LAST max-degree candidate in that order (>= comparison), and
/// the exclude branch re-enters with the pick removed — here the
/// enclosing loop. Same traversal, same first-found optimum, same
/// returned set.
struct BitsetBranch {
  std::span<const std::uint64_t> adj;
  std::size_t words = 0;
  std::vector<std::size_t> best;
  std::vector<std::size_t> current;
  std::uint64_t* stack = nullptr;  // (depth) levels x words

  [[nodiscard]] std::size_t count(const std::uint64_t* set) const {
    std::size_t total = 0;
    for (std::size_t w = 0; w < words; ++w) {
      total += static_cast<std::size_t>(std::popcount(set[w]));
    }
    return total;
  }

  void branch(std::uint64_t* cand, std::size_t depth) {
    for (;;) {
      const std::size_t remaining = count(cand);
      if (current.size() + remaining <= best.size()) return;  // bound
      if (remaining == 0) {
        if (current.size() > best.size()) best = current;
        return;
      }
      // Pick the last max-degree candidate in ascending order (the
      // reference's `>=` scan).
      std::size_t pick = 0;
      std::size_t max_degree = 0;
      for (std::size_t w = 0; w < words; ++w) {
        std::uint64_t bits = cand[w];
        while (bits != 0) {
          const auto b = static_cast<std::size_t>(std::countr_zero(bits));
          bits &= bits - 1;
          const std::size_t candidate = w * 64 + b;
          const std::uint64_t* row = &adj[candidate * words];
          std::size_t degree = 0;
          for (std::size_t v = 0; v < words; ++v) {
            degree += static_cast<std::size_t>(std::popcount(row[v] & cand[v]));
          }
          if (degree >= max_degree) {
            max_degree = degree;
            pick = candidate;
          }
        }
      }

      // Include `pick`: candidates minus pick and its neighbours.
      std::uint64_t* reduced = stack + (depth + 1) * words;
      const std::uint64_t* row = &adj[pick * words];
      for (std::size_t w = 0; w < words; ++w) reduced[w] = cand[w] & ~row[w];
      reduced[pick / 64] &= ~(std::uint64_t{1} << (pick % 64));
      current.push_back(pick);
      branch(reduced, depth + 1);
      current.pop_back();

      // Exclude `pick`: drop it and re-enter (the loop).
      cand[pick / 64] &= ~(std::uint64_t{1} << (pick % 64));
    }
  }
};

}  // namespace

std::vector<std::size_t> greedy_mis(std::span<const geodesy::Disk> disks) {
  MisScratch& scratch = mis_scratch();
  scratch.prepare(disks);
  scratch.order.resize(disks.size());
  std::iota(scratch.order.begin(), scratch.order.end(), std::size_t{0});
  std::stable_sort(scratch.order.begin(), scratch.order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return disks[a].radius_km() < disks[b].radius_km();
                   });
  scratch.kept.clear();
  for (const std::size_t candidate : scratch.order) {
    const bool clear = std::none_of(
        scratch.kept.begin(), scratch.kept.end(), [&](std::size_t held) {
          return scratch.intersects(disks, candidate, held);
        });
    if (clear) scratch.kept.push_back(candidate);
  }
  return {scratch.kept.begin(), scratch.kept.end()};
}

std::vector<std::size_t> exact_mis(std::span<const geodesy::Disk> disks) {
  const std::size_t n = disks.size();
  if (n == 0) return {};
  // Seed the bound with the greedy solution: exact can only improve on it.
  // (Must run before the adjacency build: greedy shares the scratch.)
  std::vector<std::size_t> seed = greedy_mis(disks);
  MisScratch& scratch = mis_scratch();
  const std::size_t words = (n + 63) / 64;
  build_adjacency(disks, scratch, words);
  scratch.stack.assign((n + 2) * words, 0);
  std::uint64_t* root = scratch.stack.data();
  for (std::size_t i = 0; i < n; ++i) {
    root[i / 64] |= std::uint64_t{1} << (i % 64);
  }
  BitsetBranch state;
  state.adj = scratch.adj;
  state.words = words;
  state.best = std::move(seed);
  state.stack = scratch.stack.data();
  state.branch(root, 0);
  std::sort(state.best.begin(), state.best.end());
  return state.best;
}

bool has_disjoint_pair(std::span<const geodesy::Disk> disks) {
  MisScratch& scratch = mis_scratch();
  scratch.prepare(disks);
  for (std::size_t i = 0; i < disks.size(); ++i) {
    for (std::size_t j = i + 1; j < disks.size(); ++j) {
      if (!scratch.intersects(disks, i, j)) return true;
    }
  }
  return false;
}

}  // namespace anycast::core
