#include "anycast/core/mis.hpp"

#include <algorithm>
#include <numeric>

namespace anycast::core {
namespace {

/// Adjacency as bitsets over up to 64-disk chunks; instances beyond a few
/// hundred disks never reach the exact solver.
std::vector<std::vector<bool>> intersection_matrix(
    std::span<const geodesy::Disk> disks) {
  const std::size_t n = disks.size();
  std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool overlap = disks[i].intersects(disks[j]);
      adj[i][j] = overlap;
      adj[j][i] = overlap;
    }
  }
  return adj;
}

struct BranchState {
  const std::vector<std::vector<bool>>* adj;
  std::vector<std::size_t> best;
  std::vector<std::size_t> current;

  void branch(std::vector<std::size_t>& candidates) {
    if (current.size() + candidates.size() <= best.size()) return;  // bound
    if (candidates.empty()) {
      if (current.size() > best.size()) best = current;
      return;
    }
    // Branch on the candidate with the most remaining conflicts first —
    // resolves dense cores early and tightens the bound.
    std::size_t pick_pos = 0;
    std::size_t max_degree = 0;
    for (std::size_t p = 0; p < candidates.size(); ++p) {
      std::size_t degree = 0;
      for (const std::size_t other : candidates) {
        if ((*adj)[candidates[p]][other]) ++degree;
      }
      if (degree >= max_degree) {
        max_degree = degree;
        pick_pos = p;
      }
    }
    const std::size_t pick = candidates[pick_pos];

    // Include `pick`.
    std::vector<std::size_t> reduced;
    reduced.reserve(candidates.size());
    for (const std::size_t other : candidates) {
      if (other != pick && !(*adj)[pick][other]) reduced.push_back(other);
    }
    current.push_back(pick);
    branch(reduced);
    current.pop_back();

    // Exclude `pick`.
    candidates.erase(candidates.begin() +
                     static_cast<std::ptrdiff_t>(pick_pos));
    branch(candidates);
  }
};

}  // namespace

std::vector<std::size_t> greedy_mis(std::span<const geodesy::Disk> disks) {
  std::vector<std::size_t> order(disks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return disks[a].radius_km() < disks[b].radius_km();
                   });
  std::vector<std::size_t> kept;
  for (const std::size_t candidate : order) {
    const bool clear = std::none_of(
        kept.begin(), kept.end(), [&](std::size_t held) {
          return disks[candidate].intersects(disks[held]);
        });
    if (clear) kept.push_back(candidate);
  }
  return kept;
}

std::vector<std::size_t> exact_mis(std::span<const geodesy::Disk> disks) {
  const auto adj = intersection_matrix(disks);
  BranchState state;
  state.adj = &adj;
  // Seed the bound with the greedy solution: exact can only improve on it.
  state.best = greedy_mis(disks);
  std::vector<std::size_t> candidates(disks.size());
  std::iota(candidates.begin(), candidates.end(), std::size_t{0});
  state.branch(candidates);
  std::sort(state.best.begin(), state.best.end());
  return state.best;
}

bool has_disjoint_pair(std::span<const geodesy::Disk> disks) {
  for (std::size_t i = 0; i < disks.size(); ++i) {
    for (std::size_t j = i + 1; j < disks.size(); ++j) {
      if (!disks[i].intersects(disks[j])) return true;
    }
  }
  return false;
}

}  // namespace anycast::core
