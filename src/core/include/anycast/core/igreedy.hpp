// iGreedy: anycast detection, enumeration, and geolocation from latency.
//
// Implements the analysis technique of the paper (Sec. 2.1, Fig. 3, after
// Cicalese et al., INFOCOM'15 [17]):
//   (a) map each per-VP minimum RTT to a disk around the VP;
//   (b) DETECT anycast when two disks are disjoint (speed-of-light
//       violation — no single point can satisfy both measurements);
//   (c) ENUMERATE replicas as a Maximum Independent Set of disks, solved
//       greedily by increasing radius (5-approximation);
//   (d) GEOLOCATE each MIS disk with a maximum-likelihood classifier
//       biased toward city population — in practice, the largest city in
//       the disk (≈75% city-level accuracy per the paper);
//   (e) ITERATE: collapse geolocated disks onto their city and re-solve,
//       which frees space for more disks and raises recall, until the
//       replica set converges.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "anycast/core/mis.hpp"
#include "anycast/geo/city_index.hpp"
#include "anycast/geodesy/disk.hpp"
#include "anycast/geodesy/geopoint.hpp"

namespace anycast::core {

/// One latency observation: the (believed) position of the vantage point
/// and the minimum RTT it measured toward the target.
struct Measurement {
  std::uint32_t vp_id = 0;
  geodesy::GeoPoint vp_location;
  double rtt_ms = 0.0;
};

/// One discovered replica.
struct Replica {
  geodesy::Disk disk;              // the MIS disk that isolated it
  std::uint32_t vp_id = 0;         // VP whose disk this is
  const geo::City* city = nullptr; // classification (nullptr: no city known
                                   // inside the disk)
  geodesy::GeoPoint location;      // city centre, or disk centre fallback
};

struct Result {
  bool anycast = false;          // detection verdict
  std::vector<Replica> replicas; // enumeration + geolocation (>=1 if any
                                 // measurement was usable)
  int iterations = 0;            // iGreedy rounds until convergence
  std::size_t usable_measurements = 0;
  /// Size of the first-round MIS: pairwise-disjoint disks, each provably
  /// holding a distinct replica — the strict conservative lower bound.
  /// Later rounds raise recall but inherit classification error, so
  /// `replicas.size() >= first_round_replicas` with no upper guarantee.
  std::size_t first_round_replicas = 0;
};

/// Geolocation policy, for the ablation bench: the paper's population
/// bias versus naive alternatives.
enum class CityPolicy {
  kLargestPopulation,  // the paper's classifier
  kNearestToCenter,    // closest city to the VP (pure proximity)
  kNone,               // keep disk centres (no side channel)
};

struct Options {
  int max_iterations = 16;
  /// Measurements above this RTT produce near-useless disks covering most
  /// of the planet; the paper discards them. 300 ms one-way ~ antipodal.
  double max_rtt_ms = 600.0;
  /// Use the exact branch-and-bound MIS instead of the greedy
  /// 5-approximation (validation/ablation only — exponential worst case).
  bool exact_enumeration = false;
  CityPolicy city_policy = CityPolicy::kLargestPopulation;
  /// Route every geometry step through the pre-kernel scalar
  /// implementations (hash-map measurement collapse, haversine pair
  /// tests, vector<vector<bool>> MIS, latitude-band city scans). The
  /// output is byte-identical either way — that equality is what the
  /// bench_analysis_kernel duel and the kernel property tests assert —
  /// so this exists for benchmarking and validation only.
  bool reference_kernel = false;
};

/// The analysis engine. Stateless apart from configuration; one instance
/// can process millions of targets (the paper: ~0.1 s per target, ~3 h for
/// a census).
class IGreedy {
 public:
  explicit IGreedy(const geo::CityIndex& cities, Options options = {})
      : cities_(&cities), options_(options) {}

  /// Full pipeline on one target's measurements. Multiple measurements
  /// from the same VP are collapsed to their minimum RTT first (the
  /// combination step of Sec. 4.1 at single-census granularity).
  [[nodiscard]] Result analyze(std::span<const Measurement> measurements) const;

  /// Detection only — the cheap O(n^2) disjointness test, no enumeration.
  [[nodiscard]] static bool detect(std::span<const Measurement> measurements,
                                   double max_rtt_ms = 600.0);

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  std::vector<geodesy::Disk> make_disks(
      std::span<const Measurement> measurements,
      std::vector<std::uint32_t>* vp_ids) const;
  Replica geolocate(const geodesy::Disk& disk, std::uint32_t vp_id) const;

  const geo::CityIndex* cities_;
  Options options_;
};

}  // namespace anycast::core
