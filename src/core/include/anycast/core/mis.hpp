// Maximum Independent Set over latency disks.
//
// Enumeration (Fig. 3c) reduces to MIS on the disk intersection graph: a
// set of pairwise non-overlapping disks must each contain a *different*
// replica, so |MIS| lower-bounds the replica count. MIS is NP-hard in
// general, but greedily picking disks by increasing radius is a
// 5-approximation for disk graphs and, per the paper, "in practice yields
// results very close to the optimum provided by a prohibitively more
// costly brute force solution" — both are implemented here so the claim is
// testable (see bench_mis_ablation).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "anycast/geodesy/disk.hpp"

namespace anycast::core {

/// Greedy 5-approximation: scan disks by increasing radius, keep a disk
/// when it intersects no kept disk. Returns indices into `disks`, in the
/// order picked (i.e. by increasing radius). Pairwise tests run in chord
/// space (precomputed unit vectors + cap trig, no libm per pair) with a
/// guard-banded scalar fallback, so the result is byte-identical to the
/// reference implementation.
std::vector<std::size_t> greedy_mis(std::span<const geodesy::Disk> disks);

/// Exact maximum independent set by branch-and-bound over the intersection
/// graph, held as flat uint64_t bitset rows: the candidate set is a
/// bitmask, the bound is a popcount, and including a disk reduces the
/// candidates with a single AND-NOT sweep. The adjacency build prunes
/// pairwise tests with a latitude/longitude grid over disk centres on
/// large instances. Exponential in the worst case; intended for
/// validation on instances up to a few dozen disks (the paper's
/// 10^3-seconds-per-target brute force). Returns indices in increasing
/// order — the exact same set the reference implementation returns (the
/// branching order is replicated, see mis.cpp).
std::vector<std::size_t> exact_mis(std::span<const geodesy::Disk> disks);

/// Convenience: true when at least two disks are disjoint, i.e. the
/// measurements are geo-inconsistent (speed-of-light violation, Fig. 3b).
bool has_disjoint_pair(std::span<const geodesy::Disk> disks);

/// The pre-kernel scalar implementations, kept verbatim as test oracles
/// and as the "scalar" side of the bench_analysis_kernel duel. Property
/// tests pin the fast paths above to these bit for bit; do not use them
/// on hot paths.
namespace reference {
std::vector<std::size_t> greedy_mis(std::span<const geodesy::Disk> disks);
std::vector<std::size_t> exact_mis(std::span<const geodesy::Disk> disks);
bool has_disjoint_pair(std::span<const geodesy::Disk> disks);
}  // namespace reference

}  // namespace anycast::core
