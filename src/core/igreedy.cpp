#include "anycast/core/igreedy.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "anycast/obs/metrics.hpp"

namespace anycast::core {
namespace {

/// iGreedy instruments, flushed once per analyze() call. iGreedy runs only
/// on targets that pass detection, so this is far off the probe hot path.
struct IGreedyInstruments {
  obs::Counter runs = obs::metrics().counter(
      "igreedy_runs", obs::MetricClass::kSemantic,
      "IGreedy::analyze calls");
  obs::Counter iterations = obs::metrics().counter(
      "igreedy_iterations", obs::MetricClass::kSemantic,
      "collapse-and-resolve rounds across all runs");
  obs::Histogram replicas = obs::metrics().histogram(
      "igreedy_replicas", obs::MetricClass::kSemantic,
      {1.0, 2.0, 3.0, 5.0, 10.0, 20.0, 50.0},
      "replicas enumerated per anycast run (MIS growth included)");
  obs::Histogram first_round_mis = obs::metrics().histogram(
      "igreedy_first_round_mis", obs::MetricClass::kSemantic,
      {1.0, 2.0, 3.0, 5.0, 10.0, 20.0, 50.0},
      "maximum-independent-set size of the first round");
};

const IGreedyInstruments& igreedy_instruments() {
  static const IGreedyInstruments instruments;
  return instruments;
}

}  // namespace

std::vector<geodesy::Disk> IGreedy::make_disks(
    std::span<const Measurement> measurements,
    std::vector<std::uint32_t>* vp_ids) const {
  // Collapse to one disk per VP at its minimum RTT: queueing jitter only
  // ever inflates RTT, so the minimum is the best propagation estimate.
  std::unordered_map<std::uint32_t, Measurement> best;
  best.reserve(measurements.size());
  for (const Measurement& m : measurements) {
    if (m.rtt_ms <= 0.0 || m.rtt_ms > options_.max_rtt_ms) continue;
    const auto [it, inserted] = best.emplace(m.vp_id, m);
    if (!inserted && m.rtt_ms < it->second.rtt_ms) it->second = m;
  }
  std::vector<geodesy::Disk> disks;
  disks.reserve(best.size());
  vp_ids->clear();
  vp_ids->reserve(best.size());
  // Deterministic order (by VP id) regardless of hash-map iteration.
  std::vector<const Measurement*> ordered;
  ordered.reserve(best.size());
  for (const auto& [id, m] : best) ordered.push_back(&m);
  std::sort(ordered.begin(), ordered.end(),
            [](const Measurement* a, const Measurement* b) {
              return a->vp_id < b->vp_id;
            });
  for (const Measurement* m : ordered) {
    disks.push_back(geodesy::Disk::from_rtt(m->vp_location, m->rtt_ms));
    vp_ids->push_back(m->vp_id);
  }
  return disks;
}

Replica IGreedy::geolocate(const geodesy::Disk& disk,
                           std::uint32_t vp_id) const {
  Replica replica;
  replica.disk = disk;
  replica.vp_id = vp_id;
  replica.location = disk.center();
  switch (options_.city_policy) {
    case CityPolicy::kLargestPopulation:
      replica.city = cities_->most_populated_in(disk);
      break;
    case CityPolicy::kNearestToCenter: {
      const geo::City* nearest = cities_->nearest(disk.center());
      if (nearest != nullptr && disk.contains(nearest->location())) {
        replica.city = nearest;
      }
      break;
    }
    case CityPolicy::kNone:
      break;
  }
  if (replica.city != nullptr) replica.location = replica.city->location();
  return replica;
}

bool IGreedy::detect(std::span<const Measurement> measurements,
                     double max_rtt_ms) {
  // Cheapest form: disks per VP-minimum, pairwise disjointness.
  std::unordered_map<std::uint32_t, double> best;
  std::unordered_map<std::uint32_t, geodesy::GeoPoint> where;
  for (const Measurement& m : measurements) {
    if (m.rtt_ms <= 0.0 || m.rtt_ms > max_rtt_ms) continue;
    const auto it = best.find(m.vp_id);
    if (it == best.end() || m.rtt_ms < it->second) {
      best[m.vp_id] = m.rtt_ms;
      where[m.vp_id] = m.vp_location;
    }
  }
  std::vector<geodesy::Disk> disks;
  disks.reserve(best.size());
  for (const auto& [id, rtt] : best) {
    disks.push_back(geodesy::Disk::from_rtt(where[id], rtt));
  }
  return has_disjoint_pair(disks);
}

Result IGreedy::analyze(std::span<const Measurement> measurements) const {
  Result result;
  igreedy_instruments().runs.inc();
  std::vector<std::uint32_t> vp_ids;
  std::vector<geodesy::Disk> disks = make_disks(measurements, &vp_ids);
  result.usable_measurements = disks.size();
  if (disks.empty()) return result;

  // Detection is the strict speed-of-light criterion: at least one pair of
  // disjoint disks. The collapse-and-resolve iteration below raises
  // enumeration recall but must not drive detection — an overlapping disk
  // whose city classification happens to fall outside a neighbour is not
  // evidence of anycast.
  result.anycast = has_disjoint_pair(disks);
  if (!result.anycast) {
    // Unicast (or undetectable): classic latency geolocation in the
    // smallest disk.
    std::size_t smallest = 0;
    for (std::size_t i = 1; i < disks.size(); ++i) {
      if (disks[i].radius_km() < disks[smallest].radius_km()) smallest = i;
    }
    result.replicas.push_back(geolocate(disks[smallest], vp_ids[smallest]));
    result.first_round_replicas = 1;
    return result;
  }

  // Working state: `fixed` holds replicas already geolocated (their disks
  // collapsed onto the classified city); `consumed` flags disks already
  // part of the solution. A flag sweep per round replaces the former
  // per-pick vector erase (which cost O(disks) per picked disk).
  std::vector<Replica> fixed;
  std::vector<char> consumed(disks.size(), 0);

  for (int round = 0; round < options_.max_iterations; ++round) {
    // Candidate disks this round: unconsumed disks that do not intersect
    // any collapsed replica point (those are already explained).
    std::vector<std::size_t> candidates;
    candidates.reserve(disks.size());
    for (std::size_t idx = 0; idx < disks.size(); ++idx) {
      if (consumed[idx] != 0) continue;
      const bool explained = std::any_of(
          fixed.begin(), fixed.end(), [&](const Replica& replica) {
            return disks[idx].contains(replica.location);
          });
      if (!explained) candidates.push_back(idx);
    }
    if (candidates.empty()) break;

    std::vector<geodesy::Disk> candidate_disks;
    candidate_disks.reserve(candidates.size());
    for (const std::size_t idx : candidates) {
      candidate_disks.push_back(disks[idx]);
    }
    const std::vector<std::size_t> picked =
        options_.exact_enumeration ? exact_mis(candidate_disks)
                                   : greedy_mis(candidate_disks);
    if (picked.empty()) break;
    if (round == 0) result.first_round_replicas = picked.size();

    // Geolocate this round's disks and collapse them.
    bool progress = false;
    for (const std::size_t p : picked) {
      const std::size_t idx = candidates[p];
      Replica replica = geolocate(disks[idx], vp_ids[idx]);
      // Collapse (Fig. 3e): reclassification at the same city as an
      // existing replica adds no information.
      const bool duplicate = std::any_of(
          fixed.begin(), fixed.end(), [&](const Replica& existing) {
            return existing.city != nullptr && existing.city == replica.city;
          });
      if (!duplicate || replica.city == nullptr) {
        fixed.push_back(replica);
        progress = true;
      }
      // Disk is consumed either way.
      consumed[idx] = 1;
    }
    ++result.iterations;
    if (!progress) break;
  }

  result.replicas = std::move(fixed);
  const IGreedyInstruments& in = igreedy_instruments();
  in.iterations.add(result.iterations);
  in.replicas.observe(static_cast<double>(result.replicas.size()));
  in.first_round_mis.observe(
      static_cast<double>(result.first_round_replicas));
  return result;
}

}  // namespace anycast::core
