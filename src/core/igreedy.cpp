#include "anycast/core/igreedy.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <utility>

#include "anycast/geodesy/chord.hpp"
#include "anycast/obs/metrics.hpp"

namespace anycast::core {
namespace {

/// iGreedy instruments, flushed once per analyze() call. iGreedy runs only
/// on targets that pass detection, so this is far off the probe hot path.
struct IGreedyInstruments {
  obs::Counter runs = obs::metrics().counter(
      "igreedy_runs", obs::MetricClass::kSemantic,
      "IGreedy::analyze calls");
  obs::Counter iterations = obs::metrics().counter(
      "igreedy_iterations", obs::MetricClass::kSemantic,
      "collapse-and-resolve rounds across all runs");
  obs::Histogram replicas = obs::metrics().histogram(
      "igreedy_replicas", obs::MetricClass::kSemantic,
      {1.0, 2.0, 3.0, 5.0, 10.0, 20.0, 50.0},
      "replicas enumerated per anycast run (MIS growth included)");
  obs::Histogram first_round_mis = obs::metrics().histogram(
      "igreedy_first_round_mis", obs::MetricClass::kSemantic,
      {1.0, 2.0, 3.0, 5.0, 10.0, 20.0, 50.0},
      "maximum-independent-set size of the first round");
};

const IGreedyInstruments& igreedy_instruments() {
  static const IGreedyInstruments instruments;
  return instruments;
}

/// VP ids at or above this are too sparse for the dense arrays; the
/// collapse falls back to a hash map. Census VPs number in the hundreds,
/// so in practice the dense path always runs.
constexpr std::uint32_t kDenseVpLimit = 1u << 20;

/// Thread-local collapse arena: dense per-VP min-RTT slots validated by an
/// epoch stamp, so reuse across targets is O(touched) — no clearing, no
/// hashing, no per-target allocation once warm.
struct CollapseScratch {
  std::vector<std::uint32_t> stamp;      // slot valid iff stamp[vp] == epoch
  std::vector<double> min_rtt;
  std::vector<geodesy::GeoPoint> location;
  std::vector<std::uint32_t> touched;    // VPs seen this epoch
  std::vector<geodesy::Disk> disks;      // detect() reuse
  std::uint32_t epoch = 0;

  void begin() {
    touched.clear();
    if (++epoch == 0) {  // wrapped: stale stamps could alias, reset them
      std::fill(stamp.begin(), stamp.end(), 0);
      epoch = 1;
    }
  }
};

CollapseScratch& collapse_scratch() {
  thread_local CollapseScratch scratch;
  return scratch;
}

/// Collapses measurements to one (min RTT, location) per VP into `s`, with
/// `s.touched` sorted ascending afterwards. Tie RTTs keep the FIRST
/// measurement seen — the same winner the hash-map original's strict `<`
/// replacement kept. Returns false (scratch unspecified) when a VP id
/// exceeds the dense limit; the caller falls back to the map path.
bool collapse_dense(std::span<const Measurement> measurements,
                    double max_rtt_ms, CollapseScratch& s) {
  std::uint32_t max_vp = 0;
  bool any = false;
  for (const Measurement& m : measurements) {
    if (m.rtt_ms <= 0.0 || m.rtt_ms > max_rtt_ms) continue;
    if (m.vp_id >= kDenseVpLimit) return false;
    max_vp = std::max(max_vp, m.vp_id);
    any = true;
  }
  s.begin();
  if (!any) return true;
  if (s.stamp.size() <= max_vp) {
    const std::size_t need =
        std::max<std::size_t>(max_vp + 1, s.stamp.size() * 2);
    s.stamp.resize(need, 0);  // zero-filled: never equal to epoch (>= 1)
    s.min_rtt.resize(need);
    s.location.resize(need);
  }
  for (const Measurement& m : measurements) {
    if (m.rtt_ms <= 0.0 || m.rtt_ms > max_rtt_ms) continue;
    if (s.stamp[m.vp_id] != s.epoch) {
      s.stamp[m.vp_id] = s.epoch;
      s.min_rtt[m.vp_id] = m.rtt_ms;
      s.location[m.vp_id] = m.vp_location;
      s.touched.push_back(m.vp_id);
    } else if (m.rtt_ms < s.min_rtt[m.vp_id]) {
      s.min_rtt[m.vp_id] = m.rtt_ms;
      s.location[m.vp_id] = m.vp_location;
    }
  }
  std::sort(s.touched.begin(), s.touched.end());
  return true;
}

/// Pre-kernel collapse (hash map + sort), kept verbatim as the
/// reference-kernel path and the sparse-VP-id fallback.
std::vector<geodesy::Disk> make_disks_map(
    std::span<const Measurement> measurements, double max_rtt_ms,
    std::vector<std::uint32_t>* vp_ids) {
  std::unordered_map<std::uint32_t, Measurement> best;
  best.reserve(measurements.size());
  for (const Measurement& m : measurements) {
    if (m.rtt_ms <= 0.0 || m.rtt_ms > max_rtt_ms) continue;
    const auto [it, inserted] = best.emplace(m.vp_id, m);
    if (!inserted && m.rtt_ms < it->second.rtt_ms) it->second = m;
  }
  std::vector<geodesy::Disk> disks;
  disks.reserve(best.size());
  vp_ids->clear();
  vp_ids->reserve(best.size());
  // Deterministic order (by VP id) regardless of hash-map iteration.
  std::vector<const Measurement*> ordered;
  ordered.reserve(best.size());
  for (const auto& [id, m] : best) ordered.push_back(&m);
  std::sort(ordered.begin(), ordered.end(),
            [](const Measurement* a, const Measurement* b) {
              return a->vp_id < b->vp_id;
            });
  for (const Measurement* m : ordered) {
    disks.push_back(geodesy::Disk::from_rtt(m->vp_location, m->rtt_ms));
    vp_ids->push_back(m->vp_id);
  }
  return disks;
}

}  // namespace

std::vector<geodesy::Disk> IGreedy::make_disks(
    std::span<const Measurement> measurements,
    std::vector<std::uint32_t>* vp_ids) const {
  // Collapse to one disk per VP at its minimum RTT: queueing jitter only
  // ever inflates RTT, so the minimum is the best propagation estimate.
  // Output is ascending by VP id on both paths: the dense arena sorts its
  // touched list, the map path sorts its collapsed entries — identical
  // (vp, min-rtt, location) sequences, hence identical disks.
  if (!options_.reference_kernel) {
    CollapseScratch& s = collapse_scratch();
    if (collapse_dense(measurements, options_.max_rtt_ms, s)) {
      std::vector<geodesy::Disk> disks;
      disks.reserve(s.touched.size());
      vp_ids->clear();
      vp_ids->reserve(s.touched.size());
      for (const std::uint32_t vp : s.touched) {
        disks.push_back(geodesy::Disk::from_rtt(s.location[vp], s.min_rtt[vp]));
        vp_ids->push_back(vp);
      }
      return disks;
    }
  }
  return make_disks_map(measurements, options_.max_rtt_ms, vp_ids);
}

Replica IGreedy::geolocate(const geodesy::Disk& disk,
                           std::uint32_t vp_id) const {
  Replica replica;
  replica.disk = disk;
  replica.vp_id = vp_id;
  replica.location = disk.center();
  const bool reference = options_.reference_kernel;
  switch (options_.city_policy) {
    case CityPolicy::kLargestPopulation:
      replica.city = reference ? cities_->most_populated_in_scan(disk)
                               : cities_->most_populated_in(disk);
      break;
    case CityPolicy::kNearestToCenter: {
      const geo::City* nearest = reference ? cities_->nearest_scan(disk.center())
                                           : cities_->nearest(disk.center());
      if (nearest != nullptr && disk.contains(nearest->location())) {
        replica.city = nearest;
      }
      break;
    }
    case CityPolicy::kNone:
      break;
  }
  if (replica.city != nullptr) replica.location = replica.city->location();
  return replica;
}

bool IGreedy::detect(std::span<const Measurement> measurements,
                     double max_rtt_ms) {
  // Cheapest form: disks per VP-minimum, pairwise disjointness.
  CollapseScratch& s = collapse_scratch();
  if (collapse_dense(measurements, max_rtt_ms, s)) {
    s.disks.clear();
    s.disks.reserve(s.touched.size());
    for (const std::uint32_t vp : s.touched) {
      s.disks.push_back(geodesy::Disk::from_rtt(s.location[vp], s.min_rtt[vp]));
    }
    return has_disjoint_pair(s.disks);
  }
  // Sparse-VP-id fallback: a single map holding (min RTT, location) per VP
  // — the RTT and the location that produced it are one fact and travel
  // together. The map iterates in hash order, but the verdict is an
  // existential over UNORDERED pairs of disks ("does any disjoint pair
  // exist?"), and each pair's test depends only on the two disks' centres
  // and radii — so no iteration order can change the boolean.
  std::unordered_map<std::uint32_t, std::pair<double, geodesy::GeoPoint>> best;
  best.reserve(measurements.size());
  for (const Measurement& m : measurements) {
    if (m.rtt_ms <= 0.0 || m.rtt_ms > max_rtt_ms) continue;
    const auto [it, inserted] =
        best.emplace(m.vp_id, std::make_pair(m.rtt_ms, m.vp_location));
    if (!inserted && m.rtt_ms < it->second.first) {
      it->second = {m.rtt_ms, m.vp_location};
    }
  }
  std::vector<geodesy::Disk> disks;
  disks.reserve(best.size());
  for (const auto& [id, entry] : best) {
    disks.push_back(geodesy::Disk::from_rtt(entry.second, entry.first));
  }
  return has_disjoint_pair(disks);
}

Result IGreedy::analyze(std::span<const Measurement> measurements) const {
  Result result;
  igreedy_instruments().runs.inc();
  std::vector<std::uint32_t> vp_ids;
  std::vector<geodesy::Disk> disks = make_disks(measurements, &vp_ids);
  result.usable_measurements = disks.size();
  if (disks.empty()) return result;
  const bool reference = options_.reference_kernel;

  // Detection is the strict speed-of-light criterion: at least one pair of
  // disjoint disks. The collapse-and-resolve iteration below raises
  // enumeration recall but must not drive detection — an overlapping disk
  // whose city classification happens to fall outside a neighbour is not
  // evidence of anycast.
  result.anycast = reference ? reference::has_disjoint_pair(disks)
                             : has_disjoint_pair(disks);
  if (!result.anycast) {
    // Unicast (or undetectable): classic latency geolocation in the
    // smallest disk.
    std::size_t smallest = 0;
    for (std::size_t i = 1; i < disks.size(); ++i) {
      if (disks[i].radius_km() < disks[smallest].radius_km()) smallest = i;
    }
    result.replicas.push_back(geolocate(disks[smallest], vp_ids[smallest]));
    result.first_round_replicas = 1;
    return result;
  }

  // Per-disk trig, computed once: the candidate filter below tests every
  // unconsumed disk against every fixed replica each round, and chord-space
  // containment (scalar fallback in the guard band — identical boolean to
  // Disk::contains) makes each of those tests one dot product.
  thread_local std::vector<geodesy::Unit3> disk_units;
  thread_local std::vector<geodesy::CapTrig> disk_caps;
  if (!reference) {
    disk_units.resize(disks.size());
    disk_caps.resize(disks.size());
    for (std::size_t i = 0; i < disks.size(); ++i) {
      disk_units[i] = geodesy::unit_vector(disks[i].center());
      disk_caps[i] = geodesy::cap_trig(disks[i].radius_km());
    }
  }

  // Working state: `fixed` holds replicas already geolocated (their disks
  // collapsed onto the classified city); `consumed` flags disks already
  // part of the solution. A flag sweep per round replaces the former
  // per-pick vector erase (which cost O(disks) per picked disk).
  std::vector<Replica> fixed;
  std::vector<geodesy::Unit3> fixed_units;  // unit vectors of fixed locations
  std::vector<char> consumed(disks.size(), 0);

  const auto explained_by_fixed = [&](std::size_t idx) {
    if (reference) {
      return std::any_of(fixed.begin(), fixed.end(),
                         [&](const Replica& replica) {
                           return disks[idx].contains(replica.location);
                         });
    }
    for (std::size_t f = 0; f < fixed.size(); ++f) {
      if (geodesy::cap_contains(disk_units[idx], fixed_units[f],
                                disk_caps[idx], disks[idx].center(),
                                fixed[f].location)) {
        return true;
      }
    }
    return false;
  };

  for (int round = 0; round < options_.max_iterations; ++round) {
    // Candidate disks this round: unconsumed disks that do not intersect
    // any collapsed replica point (those are already explained).
    std::vector<std::size_t> candidates;
    candidates.reserve(disks.size());
    for (std::size_t idx = 0; idx < disks.size(); ++idx) {
      if (consumed[idx] != 0) continue;
      if (!explained_by_fixed(idx)) candidates.push_back(idx);
    }
    if (candidates.empty()) break;

    std::vector<geodesy::Disk> candidate_disks;
    candidate_disks.reserve(candidates.size());
    for (const std::size_t idx : candidates) {
      candidate_disks.push_back(disks[idx]);
    }
    const std::vector<std::size_t> picked =
        options_.exact_enumeration
            ? (reference ? reference::exact_mis(candidate_disks)
                         : exact_mis(candidate_disks))
            : (reference ? reference::greedy_mis(candidate_disks)
                         : greedy_mis(candidate_disks));
    if (picked.empty()) break;
    if (round == 0) result.first_round_replicas = picked.size();

    // Geolocate this round's disks and collapse them.
    bool progress = false;
    for (const std::size_t p : picked) {
      const std::size_t idx = candidates[p];
      Replica replica = geolocate(disks[idx], vp_ids[idx]);
      // Collapse (Fig. 3e): reclassification at the same city as an
      // existing replica adds no information.
      const bool duplicate = std::any_of(
          fixed.begin(), fixed.end(), [&](const Replica& existing) {
            return existing.city != nullptr && existing.city == replica.city;
          });
      if (!duplicate || replica.city == nullptr) {
        if (!reference) {
          fixed_units.push_back(geodesy::unit_vector(replica.location));
        }
        fixed.push_back(replica);
        progress = true;
      }
      // Disk is consumed either way.
      consumed[idx] = 1;
    }
    ++result.iterations;
    if (!progress) break;
  }

  result.replicas = std::move(fixed);
  const IGreedyInstruments& in = igreedy_instruments();
  in.iterations.add(result.iterations);
  in.replicas.observe(static_cast<double>(result.replicas.size()));
  in.first_round_mis.observe(
      static_cast<double>(result.first_round_replicas));
  return result;
}

}  // namespace anycast::core
