#include "anycast/geodesy/chord.hpp"

#include <algorithm>
#include <numbers>

namespace anycast::geodesy {
namespace {

constexpr double kDegToRad = std::numbers::pi / 180.0;

// Radius-sum routing constants for caps_intersect. The scalar intersects()
// compares d <= ra+rb where d = 2R*asin(min(1, .)) never exceeds
// 2*6371*asin(1.0) = 20015.0867... km; pi*R (the exact supremum) is
// 20015.0865 km. Sums at or above kAlwaysKm therefore intersect for any
// centres; sums inside [kSumFallbackKm, kAlwaysKm) sit close enough to the
// monotone limit of sin() that the band is resolved by the scalar
// original; below kSumFallbackKm the half-angle sum is safely under pi/2
// (margin ~1e-6 rad, far beyond any rounding) and the angle-sum identity
// applies.
constexpr double kAlwaysKm = 20015.09;
constexpr double kSumFallbackKm = 20015.05;

}  // namespace

Unit3 unit_vector(const GeoPoint& point) {
  const double lat = point.latitude() * kDegToRad;
  const double lon = point.longitude() * kDegToRad;
  const double cos_lat = std::cos(lat);
  return Unit3{cos_lat * std::cos(lon), cos_lat * std::sin(lon),
               std::sin(lat)};
}

CapTrig cap_trig(double radius_km) {
  CapTrig cap;
  cap.radius_km = radius_km < 0.0 ? 0.0 : radius_km;
  double half = cap.radius_km / (2.0 * kEarthRadiusKm);
  if (half >= std::numbers::pi / 2.0) {
    half = std::numbers::pi / 2.0;
    cap.clamped = true;
  }
  cap.sin_half = std::sin(half);
  cap.cos_half = std::cos(half);
  return cap;
}

bool caps_intersect(const Unit3& ua, const Unit3& ub, const CapTrig& a,
                    const CapTrig& b, const GeoPoint& pa, const GeoPoint& pb) {
  const double r_sum = a.radius_km + b.radius_km;
  if (r_sum >= kAlwaysKm) return true;
  if (r_sum >= kSumFallbackKm) {
    return distance_km(pa, pb) <= r_sum;  // scalar original, rare band
  }
  switch (classify(chord2(ua, ub), threshold_chord2_sum(a, b))) {
    case ChordVerdict::kTrue:
      return true;
    case ChordVerdict::kFalse:
      return false;
    case ChordVerdict::kBoundary:
      return distance_km(pa, pb) <= r_sum;
  }
  return distance_km(pa, pb) <= r_sum;  // unreachable
}

bool cap_contains(const Unit3& ucenter, const Unit3& upoint,
                  const CapTrig& cap, const GeoPoint& center,
                  const GeoPoint& point) {
  switch (classify(chord2(ucenter, upoint), threshold_chord2(cap))) {
    case ChordVerdict::kTrue:
      return true;
    case ChordVerdict::kFalse:
      return false;
    case ChordVerdict::kBoundary:
      return distance_km(center, point) <= cap.radius_km;
  }
  return distance_km(center, point) <= cap.radius_km;  // unreachable
}

void batch_distance_km(const GeoPoint& origin, std::span<const double> lat_deg,
                       std::span<const double> lon_deg,
                       std::span<double> out_km) {
  // The exact operation sequence of the scalar distance_km(), with the
  // origin-only terms hoisted: cos(lat1) is loop-invariant and hoisting a
  // deterministic libm call cannot change its bits, so every element below
  // is bit-identical to distance_km(origin, GeoPoint(lat[i], lon[i])).
  const double lat1 = origin.latitude() * kDegToRad;
  const double cos_lat1 = std::cos(lat1);
  const double origin_lat = origin.latitude();
  const double origin_lon = origin.longitude();
  const std::size_t n = std::min({lat_deg.size(), lon_deg.size(),
                                  out_km.size()});
  for (std::size_t i = 0; i < n; ++i) {
    const double lat2 = lat_deg[i] * kDegToRad;
    const double dlat = (lat_deg[i] - origin_lat) * kDegToRad;
    const double dlon = (lon_deg[i] - origin_lon) * kDegToRad;
    const double sin_dlat = std::sin(dlat / 2.0);
    const double sin_dlon = std::sin(dlon / 2.0);
    const double h = sin_dlat * sin_dlat +
                     cos_lat1 * std::cos(lat2) * sin_dlon * sin_dlon;
    out_km[i] = 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
  }
}

}  // namespace anycast::geodesy
