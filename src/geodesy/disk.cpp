#include "anycast/geodesy/disk.hpp"

namespace anycast::geodesy {

std::string Disk::to_string() const {
  return "Disk{" + center_.to_string() + ", r=" +
         std::to_string(radius_km_) + "km}";
}

double gap_km(const Disk& a, const Disk& b) {
  return distance_km(a.center(), b.center()) - a.radius_km() - b.radius_km();
}

}  // namespace anycast::geodesy
