#include "anycast/geodesy/geopoint.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace anycast::geodesy {
namespace {

constexpr double kDegToRad = std::numbers::pi / 180.0;
constexpr double kRadToDeg = 180.0 / std::numbers::pi;

double normalize_longitude(double lon) {
  lon = std::fmod(lon + 180.0, 360.0);
  if (lon < 0.0) lon += 360.0;
  return lon - 180.0;
}

}  // namespace

GeoPoint::GeoPoint(double latitude_deg, double longitude_deg)
    : latitude_deg_(std::clamp(latitude_deg, -90.0, 90.0)),
      longitude_deg_(normalize_longitude(longitude_deg)) {}

std::string GeoPoint::to_string() const {
  return "(" + std::to_string(latitude_deg_) + ", " +
         std::to_string(longitude_deg_) + ")";
}

double distance_km(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = a.latitude() * kDegToRad;
  const double lat2 = b.latitude() * kDegToRad;
  const double dlat = (b.latitude() - a.latitude()) * kDegToRad;
  const double dlon = (b.longitude() - a.longitude()) * kDegToRad;
  const double sin_dlat = std::sin(dlat / 2.0);
  const double sin_dlon = std::sin(dlon / 2.0);
  const double h = sin_dlat * sin_dlat +
                   std::cos(lat1) * std::cos(lat2) * sin_dlon * sin_dlon;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

GeoPoint destination(const GeoPoint& origin, double bearing_deg,
                     double distance_km) {
  const double lat1 = origin.latitude() * kDegToRad;
  const double lon1 = origin.longitude() * kDegToRad;
  const double bearing = bearing_deg * kDegToRad;
  const double angular = distance_km / kEarthRadiusKm;
  const double lat2 =
      std::asin(std::sin(lat1) * std::cos(angular) +
                std::cos(lat1) * std::sin(angular) * std::cos(bearing));
  const double lon2 =
      lon1 + std::atan2(std::sin(bearing) * std::sin(angular) * std::cos(lat1),
                        std::cos(angular) - std::sin(lat1) * std::sin(lat2));
  return GeoPoint(lat2 * kRadToDeg, lon2 * kRadToDeg);
}

double initial_bearing_deg(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = a.latitude() * kDegToRad;
  const double lat2 = b.latitude() * kDegToRad;
  const double dlon = (b.longitude() - a.longitude()) * kDegToRad;
  const double y = std::sin(dlon) * std::cos(lat2);
  const double x = std::cos(lat1) * std::sin(lat2) -
                   std::sin(lat1) * std::cos(lat2) * std::cos(dlon);
  double bearing = std::atan2(y, x) * kRadToDeg;
  if (bearing < 0.0) bearing += 360.0;
  return bearing;
}

}  // namespace anycast::geodesy
