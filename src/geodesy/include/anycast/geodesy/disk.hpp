// Latency disks: the geometric core of anycast detection.
//
// A round-trip time of rtt_ms measured from a vantage point bounds the
// target's location to a spherical cap ("disk") centred on the VP whose
// radius is the distance light can travel in fibre in rtt_ms/2:
//
//     radius_km = (rtt_ms / 2) * (2/3) * c  ~=  rtt_ms * 100 km/ms.
//
// If two such disks for the same target do not intersect, no single
// location can satisfy both measurements — a speed-of-light violation —
// so the target must be anycast (Fig. 2/3 of the paper).
#pragma once

#include <string>

#include "anycast/geodesy/geopoint.hpp"

namespace anycast::geodesy {

/// Speed of light in vacuum, km/ms.
inline constexpr double kSpeedOfLightKmPerMs = 299.792458;

/// Propagation speed in optical fibre: refraction index ~1.5, so 2/3 c.
inline constexpr double kFiberSpeedKmPerMs = kSpeedOfLightKmPerMs * 2.0 / 3.0;

/// Largest distance a packet can have covered one-way given a round trip
/// of `rtt_ms` milliseconds.
constexpr double rtt_to_radius_km(double rtt_ms) {
  return rtt_ms / 2.0 * kFiberSpeedKmPerMs;
}

/// The minimum RTT physically possible between two points `km` apart.
constexpr double distance_to_min_rtt_ms(double km) {
  return 2.0 * km / kFiberSpeedKmPerMs;
}

/// A spherical cap: all points within `radius_km` of `center`.
class Disk {
 public:
  Disk() = default;
  Disk(GeoPoint center, double radius_km)
      : center_(center), radius_km_(radius_km < 0.0 ? 0.0 : radius_km) {}

  /// The disk implied by measuring `rtt_ms` from a VP at `vantage`.
  static Disk from_rtt(GeoPoint vantage, double rtt_ms) {
    return Disk(vantage, rtt_to_radius_km(rtt_ms));
  }

  [[nodiscard]] const GeoPoint& center() const { return center_; }
  [[nodiscard]] double radius_km() const { return radius_km_; }

  [[nodiscard]] bool contains(const GeoPoint& point) const {
    return distance_km(center_, point) <= radius_km_;
  }

  /// True when the two caps share at least one point.
  [[nodiscard]] bool intersects(const Disk& other) const {
    return distance_km(center_, other.center_) <=
           radius_km_ + other.radius_km_;
  }

  /// True when `other` lies entirely within this disk.
  [[nodiscard]] bool contains(const Disk& other) const {
    return distance_km(center_, other.center_) + other.radius_km_ <=
           radius_km_;
  }

  /// True when the whole sphere is covered (radius at least half the
  /// circumference); such disks constrain nothing.
  [[nodiscard]] bool covers_sphere() const {
    return radius_km_ >= kMaxDistanceKm;
  }

  [[nodiscard]] std::string to_string() const;

 private:
  GeoPoint center_;
  double radius_km_ = 0.0;
};

/// Gap between two disks along the great circle joining their centres
/// (negative when they overlap). Two non-positive-gap disks can host a
/// single target; a positive gap is a speed-of-light violation.
double gap_km(const Disk& a, const Disk& b);

}  // namespace anycast::geodesy
