// Latitude/longitude bucket grid: conservative candidate pruning for
// radius queries over point sets.
//
// Both halves of the analysis kernel ask the same shape of question many
// times: "which of these points could lie within R km of this centre?" —
// cities inside a latency disk (geolocation), disk centres within a radius
// sum (intersection-graph construction). The grid buckets points into
// fixed-degree cells once, then answers each query by visiting only the
// cells a disk of that radius can reach: a latitude row band, and per row
// a longitude window derived from the haversine lower bound
//
//     d >= 2R asin( sqrt(cos(lat1) cos(lat2)) * sin(dlon/2) ).
//
// The visit is a strict SUPERSET of the true within-radius set (bounds are
// inflated past any rounding; pole-touching rows fall back to a full
// wrap), so callers keep their exact predicate on the candidates and
// results stay byte-identical to a full scan — the grid only removes work,
// never answers. Cells store point indices in ascending order, so a
// full-cell sweep visits candidates in a deterministic order.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "anycast/geodesy/geopoint.hpp"

namespace anycast::geodesy {

class LatLonGrid {
 public:
  LatLonGrid() = default;

  /// Buckets `points[i]` for i in [0, points.size()). `cell_deg` is the
  /// cell edge in degrees (same for latitude and longitude).
  LatLonGrid(std::span<const GeoPoint> points, double cell_deg);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return count_; }

  [[nodiscard]] std::size_t row_of(double lat_deg) const;
  [[nodiscard]] std::size_t col_of(double lon_deg) const;

  /// [min_lat, max_lat) span of a row (last row closed at +90).
  [[nodiscard]] double row_min_lat(std::size_t row) const;
  [[nodiscard]] double row_max_lat(std::size_t row) const;

  /// Point indices bucketed in (row, col), ascending.
  [[nodiscard]] std::span<const std::uint32_t> cell(std::size_t row,
                                                    std::size_t col) const;

  /// All point indices bucketed anywhere in `row` — one contiguous span
  /// (cells are laid out row-major), west to east, ascending within each
  /// cell. `row_offset` is the span's start in bucketed-slot space, for
  /// callers that keep per-slot SoA side arrays.
  [[nodiscard]] std::span<const std::uint32_t> row_indices(
      std::size_t row) const;
  [[nodiscard]] std::size_t row_offset(std::size_t row) const;

  /// Visits the indices of every point that could lie within `radius_km`
  /// of `center` (a superset; apply the exact test on each candidate).
  /// Within a cell, indices arrive in ascending order; across cells, row
  /// by row, west to east.
  template <typename Visitor>  // Visitor(std::uint32_t index)
  void visit_within(const GeoPoint& center, double radius_km,
                    Visitor&& visit) const {
    if (count_ == 0) return;
    const RowBand band = band_of(center, radius_km);
    for (std::size_t row = band.first_row; row <= band.last_row; ++row) {
      std::size_t first_col = 0;
      std::size_t col_count = cols_;
      lon_window(center, radius_km, row, &first_col, &col_count);
      for (std::size_t c = 0; c < col_count; ++c) {
        const std::size_t col = (first_col + c) % cols_;
        for (const std::uint32_t index : cell(row, col)) visit(index);
      }
    }
  }

 private:
  struct RowBand {
    std::size_t first_row = 0;
    std::size_t last_row = 0;
  };
  [[nodiscard]] RowBand band_of(const GeoPoint& center,
                                double radius_km) const;
  /// Longitude column window for `row`; full wrap when the radius or the
  /// row geometry defeats the bound.
  void lon_window(const GeoPoint& center, double radius_km, std::size_t row,
                  std::size_t* first_col, std::size_t* col_count) const;

  double cell_deg_ = 4.0;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t count_ = 0;
  std::vector<std::uint32_t> offsets_;  // rows*cols + 1 cumulative starts
  std::vector<std::uint32_t> indices_;  // bucketed point indices
};

}  // namespace anycast::geodesy
