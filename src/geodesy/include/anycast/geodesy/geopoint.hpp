// Points on the sphere and great-circle arithmetic.
//
// All of iGreedy's geometry happens on a spherical Earth model: latency
// disks are spherical caps, and "distance" always means great-circle
// (haversine) distance in kilometres.
#pragma once

#include <compare>
#include <string>

namespace anycast::geodesy {

/// Mean Earth radius, km (IUGG).
inline constexpr double kEarthRadiusKm = 6371.0;

/// Half Earth circumference: the maximum possible great-circle distance.
inline constexpr double kMaxDistanceKm = 20015.1;

/// A (latitude, longitude) pair in degrees. Latitude in [-90, 90],
/// longitude normalised to [-180, 180).
class GeoPoint {
 public:
  constexpr GeoPoint() = default;
  GeoPoint(double latitude_deg, double longitude_deg);

  [[nodiscard]] double latitude() const { return latitude_deg_; }
  [[nodiscard]] double longitude() const { return longitude_deg_; }

  [[nodiscard]] std::string to_string() const;

  friend auto operator<=>(const GeoPoint&, const GeoPoint&) = default;

 private:
  double latitude_deg_ = 0.0;
  double longitude_deg_ = 0.0;
};

/// Great-circle distance between two points, km (haversine formula —
/// numerically stable for small separations, exact enough for the
/// >100 km scales of anycast geolocation).
double distance_km(const GeoPoint& a, const GeoPoint& b);

/// The point reached by travelling `distance_km` from `origin` along the
/// initial bearing `bearing_deg` (clockwise from north). Used by the
/// simulator to scatter replicas and by tests to construct exact geometry.
GeoPoint destination(const GeoPoint& origin, double bearing_deg,
                     double distance_km);

/// Initial great-circle bearing from `a` to `b`, degrees in [0, 360).
double initial_bearing_deg(const GeoPoint& a, const GeoPoint& b);

}  // namespace anycast::geodesy
