// Chord-space geometry: the vectorizable fast path for disk tests.
//
// Every geometric predicate in the analysis kernel is a comparison of a
// great-circle distance against a radius (or radius sum/difference). The
// haversine evaluates that distance with two sin(), a sqrt() and an asin()
// per pair — ~100ns of libm per test. But the *comparison* does not need
// the distance: on the unit sphere,
//
//     d(a, b) <= r   <=>   chord2(a, b) <= 4 * sin^2(r / 2R)
//
// where chord2 is the squared 3D straight-line distance between the unit
// vectors of a and b (chord2 = 2 - 2*dot). Both sides are monotone images
// of the originals, so with per-point unit vectors and per-disk cap trig
// precomputed once, each pairwise test costs one dot product and one
// compare — no libm at all. Threshold trig for radius *sums* also needs no
// libm: sin(ra+rb) expands over per-disk sin/cos via the angle-sum
// identity.
//
// Determinism contract: every predicate here returns EXACTLY the same
// boolean as its scalar original in disk.hpp, bit for bit. Chord-space and
// haversine-space round differently, so near the decision boundary the
// monotone argument alone cannot guarantee agreement; classify() therefore
// returns a tri-state, and the kernel falls back to the scalar original
// inside a guard band wide enough to contain the combined floating-point
// error of both paths (~1e-13 relative; the band is 1e-9 relative plus
// 1e-11 absolute, orders of magnitude wider). The band is hit only when a
// distance and a radius agree to ~9 significant digits — adversarial
// constructions, essentially never on measured RTTs — so the fallback
// keeps byte-identical output at negligible cost. See DESIGN.md §14.
#pragma once

#include <cmath>
#include <span>

#include "anycast/geodesy/disk.hpp"
#include "anycast/geodesy/geopoint.hpp"

namespace anycast::geodesy {

/// Unit vector of a point on the sphere (ECEF direction, radius 1).
struct Unit3 {
  double x = 0.0;
  double y = 0.0;
  double z = 1.0;
};

[[nodiscard]] Unit3 unit_vector(const GeoPoint& point);

/// Squared straight-line (chord) distance between two unit vectors.
/// Monotone in great-circle distance; range [0, 4].
[[nodiscard]] inline double chord2(const Unit3& a, const Unit3& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  const double dz = a.z - b.z;
  return dx * dx + dy * dy + dz * dz;
}

/// Precomputed trig of a disk's cap half-angle r/(2R): everything a
/// pairwise test needs, one sin/cos per disk instead of per pair.
struct CapTrig {
  double radius_km = 0.0;
  double sin_half = 0.0;  // sin(min(r/(2R), pi/2))
  double cos_half = 1.0;  // cos(min(r/(2R), pi/2))
  bool clamped = false;   // r/(2R) >= pi/2: the cap covers the sphere
};

[[nodiscard]] CapTrig cap_trig(double radius_km);

/// Chord-space decisions come in three flavours: clearly inside the
/// threshold, clearly outside, or within the guard band where chord-space
/// and haversine-space rounding could disagree — the caller must fall back
/// to the scalar predicate there.
enum class ChordVerdict { kTrue, kFalse, kBoundary };

/// Guard band: |chord2 - threshold| <= kRel * threshold + kAbs falls back.
inline constexpr double kChordGuardRel = 1e-9;
inline constexpr double kChordGuardAbs = 1e-11;

[[nodiscard]] inline ChordVerdict classify(double chord2_value,
                                           double threshold_chord2) {
  const double guard =
      kChordGuardRel * threshold_chord2 + kChordGuardAbs;
  if (chord2_value < threshold_chord2 - guard) return ChordVerdict::kTrue;
  if (chord2_value > threshold_chord2 + guard) return ChordVerdict::kFalse;
  return ChordVerdict::kBoundary;
}

/// Threshold chord2 for "distance <= r": 4 sin^2(r/2R).
[[nodiscard]] inline double threshold_chord2(const CapTrig& cap) {
  return 4.0 * cap.sin_half * cap.sin_half;
}

/// Threshold chord2 for "distance <= ra + rb" via the angle-sum identity:
/// sin(a+b) = sin a cos b + cos a sin b — no libm per pair. Only valid
/// when the half-angle sum stays below pi/2, where sin is monotone;
/// caps_intersect() routes sums near or past pi*R (~20015.087 km, the
/// maximum great-circle distance) to a short-circuit or the scalar
/// fallback before evaluating this.
[[nodiscard]] inline double threshold_chord2_sum(const CapTrig& a,
                                                 const CapTrig& b) {
  const double s = a.sin_half * b.cos_half + a.cos_half * b.sin_half;
  return 4.0 * s * s;
}

/// Fast "disks intersect" with scalar fallback: identical boolean to
/// Disk(pa, a.radius_km).intersects(Disk(pb, b.radius_km)).
[[nodiscard]] bool caps_intersect(const Unit3& ua, const Unit3& ub,
                                  const CapTrig& a, const CapTrig& b,
                                  const GeoPoint& pa, const GeoPoint& pb);

/// Fast "point inside disk" with scalar fallback: identical boolean to
/// Disk(center, cap.radius_km).contains(point).
[[nodiscard]] bool cap_contains(const Unit3& ucenter, const Unit3& upoint,
                                const CapTrig& cap, const GeoPoint& center,
                                const GeoPoint& point);

// ---- SoA batch haversine ---------------------------------------------------
//
// distance_km() for one origin against many points laid out as parallel
// latitude/longitude arrays. Evaluates the EXACT operation sequence of the
// scalar distance_km() — same formula, same rounding — so every output
// element is bit-identical to the scalar call; the win is structural
// (origin trig hoisted out of the loop, sequential SoA loads, one tight
// loop the compiler can pipeline libm calls through) rather than a changed
// formula. Used where the kernel genuinely needs distances (nearest-city
// scoring, validation error CDFs), not just comparisons.
void batch_distance_km(const GeoPoint& origin, std::span<const double> lat_deg,
                       std::span<const double> lon_deg,
                       std::span<double> out_km);

}  // namespace anycast::geodesy
