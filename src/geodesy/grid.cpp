#include "anycast/geodesy/grid.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace anycast::geodesy {
namespace {

constexpr double kDegToRad = std::numbers::pi / 180.0;
constexpr double kRadToDeg = 180.0 / std::numbers::pi;

/// Conservative km-per-degree-of-latitude: slightly BELOW the true
/// pi*R/180 = 111.19493, so radius/k overestimates the latitude band.
constexpr double kKmPerLatDegreeFloor = 111.194;

}  // namespace

LatLonGrid::LatLonGrid(std::span<const GeoPoint> points, double cell_deg) {
  cell_deg_ = std::clamp(cell_deg, 0.25, 90.0);
  rows_ = static_cast<std::size_t>(std::ceil(180.0 / cell_deg_));
  cols_ = static_cast<std::size_t>(std::ceil(360.0 / cell_deg_));
  count_ = points.size();
  const std::size_t cells = rows_ * cols_;
  offsets_.assign(cells + 1, 0);
  // Counting sort by cell keeps per-cell index order ascending.
  std::vector<std::uint32_t> cell_of(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::size_t cell_id =
        row_of(points[i].latitude()) * cols_ + col_of(points[i].longitude());
    cell_of[i] = static_cast<std::uint32_t>(cell_id);
    ++offsets_[cell_id + 1];
  }
  for (std::size_t c = 0; c < cells; ++c) offsets_[c + 1] += offsets_[c];
  indices_.resize(points.size());
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t i = 0; i < points.size(); ++i) {
    indices_[cursor[cell_of[i]]++] = static_cast<std::uint32_t>(i);
  }
}

std::size_t LatLonGrid::row_of(double lat_deg) const {
  const double shifted = (lat_deg + 90.0) / cell_deg_;
  const auto row = static_cast<std::ptrdiff_t>(std::floor(shifted));
  return static_cast<std::size_t>(
      std::clamp<std::ptrdiff_t>(row, 0,
                                 static_cast<std::ptrdiff_t>(rows_) - 1));
}

std::size_t LatLonGrid::col_of(double lon_deg) const {
  const double shifted = (lon_deg + 180.0) / cell_deg_;
  const auto col = static_cast<std::ptrdiff_t>(std::floor(shifted));
  return static_cast<std::size_t>(
      std::clamp<std::ptrdiff_t>(col, 0,
                                 static_cast<std::ptrdiff_t>(cols_) - 1));
}

double LatLonGrid::row_min_lat(std::size_t row) const {
  return -90.0 + static_cast<double>(row) * cell_deg_;
}

double LatLonGrid::row_max_lat(std::size_t row) const {
  return std::min(90.0, -90.0 + static_cast<double>(row + 1) * cell_deg_);
}

std::span<const std::uint32_t> LatLonGrid::cell(std::size_t row,
                                                std::size_t col) const {
  const std::size_t cell_id = row * cols_ + col;
  return std::span<const std::uint32_t>(indices_)
      .subspan(offsets_[cell_id], offsets_[cell_id + 1] - offsets_[cell_id]);
}

std::span<const std::uint32_t> LatLonGrid::row_indices(std::size_t row) const {
  const std::size_t first = offsets_[row * cols_];
  const std::size_t last = offsets_[(row + 1) * cols_];
  return std::span<const std::uint32_t>(indices_).subspan(first, last - first);
}

std::size_t LatLonGrid::row_offset(std::size_t row) const {
  return offsets_[row * cols_];
}

LatLonGrid::RowBand LatLonGrid::band_of(const GeoPoint& center,
                                        double radius_km) const {
  const double band_deg =
      std::max(0.0, radius_km) / kKmPerLatDegreeFloor + 1e-9;
  RowBand band;
  band.first_row = row_of(center.latitude() - band_deg);
  band.last_row = row_of(center.latitude() + band_deg);
  return band;
}

void LatLonGrid::lon_window(const GeoPoint& center, double radius_km,
                            std::size_t row, std::size_t* first_col,
                            std::size_t* col_count) const {
  *first_col = 0;
  *col_count = cols_;
  // Haversine lower bound: a point in this row within radius_km of the
  // centre satisfies sin(dlon/2) <= sin(r/2R) / sqrt(cos(lat_c) cos(lat_p)),
  // with cos(lat_p) bounded below by the row edge farther from the
  // equator. Rows touching a pole (cos <= 0) and radii past a quarter
  // circumference keep the full wrap.
  const double half_angle = radius_km / (2.0 * kEarthRadiusKm);
  if (half_angle >= std::numbers::pi / 2.0 - 1e-9) return;
  const double cos_center = std::cos(center.latitude() * kDegToRad);
  const double row_far_lat =
      std::max(std::abs(row_min_lat(row)), std::abs(row_max_lat(row)));
  const double cos_row = std::cos(row_far_lat * kDegToRad);
  const double denom = cos_center * cos_row;
  if (denom <= 1e-12) return;
  const double q = std::sin(half_angle) / std::sqrt(denom);
  if (q >= 1.0 - 1e-12) return;
  // Inflate the window beyond any rounding in the bound itself.
  const double window_deg =
      2.0 * std::asin(q) * kRadToDeg * (1.0 + 1e-9) + 1e-7;
  if (window_deg >= 180.0) return;
  // The window may wrap the antimeridian: express it as start + count,
  // with the count taken from the UNWRAPPED column span (endpoint columns
  // alone are ambiguous — a near-full-circle window can normalise both
  // endpoints into the same column).
  const double west = center.longitude() - window_deg;
  const double east = center.longitude() + window_deg;
  const auto west_cell =
      static_cast<std::ptrdiff_t>(std::floor((west + 180.0) / cell_deg_));
  const auto east_cell =
      static_cast<std::ptrdiff_t>(std::floor((east + 180.0) / cell_deg_));
  const auto span = static_cast<std::size_t>(east_cell - west_cell) + 1;
  if (span >= cols_) return;  // covers every column: keep the full wrap
  *first_col = col_of(GeoPoint(0.0, west).longitude());
  *col_count = span;
}

}  // namespace anycast::geodesy
