#include "anycast/rng/lfsr.hpp"

#include <array>
#include <stdexcept>

namespace anycast::rng {
namespace {

// Maximal-length Galois tap masks, indexed by register width (bit n-1 is
// the MSB of an n-bit register). Values follow the classic Xilinx XAPP052
// table of primitive polynomials.
constexpr std::array<std::uint32_t, 33> kTaps = {
    0,          0,          0x3,        0x6,        0xC,
    0x14,       0x30,       0x60,       0xB8,       0x110,
    0x240,      0x500,      0xE08,      0x1C80,     0x3802,
    0x6000,     0xD008,     0x12000,    0x20400,    0x72000,
    0x90000,    0x140000,   0x300000,   0x420000,   0xE10000,
    0x1200000,  0x2000023,  0x4000013,  0x9000000,  0x14000000,
    0x20000029, 0x48000000, 0x80200003,
};

}  // namespace

GaloisLfsr::GaloisLfsr(int bits, std::uint32_t start) : bits_(bits) {
  if (bits < 2 || bits > 32) {
    throw std::invalid_argument("GaloisLfsr width must be in [2, 32]");
  }
  taps_ = kTaps[static_cast<std::size_t>(bits)];
  mask_ = bits == 32 ? ~std::uint32_t{0}
                     : ((std::uint32_t{1} << bits) - 1);
  state_ = start & mask_;
  if (state_ == 0) state_ = 1;  // 0 is the lone fixed point; skip it
}

std::uint32_t GaloisLfsr::next() {
  const std::uint32_t lsb = state_ & 1u;
  state_ >>= 1;
  if (lsb != 0) state_ ^= taps_;
  return state_;
}

int GaloisLfsr::bits_for(std::uint64_t count) {
  int bits = 2;
  while (bits < 32 && ((std::uint64_t{1} << bits) - 1) < count) ++bits;
  return bits;
}

LfsrPermutation::LfsrPermutation(std::uint32_t size, std::uint32_t seed)
    : lfsr_(GaloisLfsr::bits_for(size), 0),
      size_(size),
      first_state_(0) {
  if (size == 0) {
    exhausted_ = true;
    first_state_ = lfsr_.state();
    return;
  }
  // Fold the seed into a starting point on the cycle: every state in
  // [1, 2^bits) lies on the single maximal cycle, so any nonzero start is a
  // valid offset.
  const std::uint64_t period = lfsr_.period();
  const auto start =
      static_cast<std::uint32_t>(1 + (seed % period));
  lfsr_ = GaloisLfsr(lfsr_.bits(), start);
  first_state_ = lfsr_.state();
}

std::optional<std::uint32_t> LfsrPermutation::next() {
  if (exhausted_ || emitted_ == size_) return std::nullopt;
  while (true) {
    const std::uint32_t candidate = lfsr_.state() - 1;
    lfsr_.next();
    const bool wrapped = lfsr_.state() == first_state_;
    if (candidate < size_) {
      ++emitted_;
      if (wrapped) exhausted_ = true;
      return candidate;
    }
    if (wrapped) {
      exhausted_ = true;
      return std::nullopt;
    }
  }
}

}  // namespace anycast::rng
