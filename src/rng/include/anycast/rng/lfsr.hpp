// Galois linear-feedback shift register target permutation.
//
// Sec. 3.5: "each node must desynchronize to avoid hitting ICMP rate
// limiting ... by randomized permutation for target nodes, achieved via a
// Linear Feedback Shift Register (LFSR) with Galois configuration".
// A maximal-length n-bit LFSR visits every value in [1, 2^n) exactly once,
// giving a zero-memory pseudo-random permutation of the target space: the
// prober walks the LFSR sequence and keeps only indices below the hitlist
// size.
#pragma once

#include <cstdint>
#include <optional>

namespace anycast::rng {

/// A maximal-period Galois LFSR over n bits, 2 <= n <= 32.
/// The cycle covers all values in [1, 2^n); 0 is not part of any cycle.
class GaloisLfsr {
 public:
  /// `bits` selects the register width; `start` the initial state
  /// (must be nonzero below 2^bits; it is folded into range if not).
  GaloisLfsr(int bits, std::uint32_t start);

  /// Advances one step and returns the new state.
  std::uint32_t next();

  [[nodiscard]] std::uint32_t state() const { return state_; }
  [[nodiscard]] int bits() const { return bits_; }
  [[nodiscard]] std::uint64_t period() const {
    return (std::uint64_t{1} << bits_) - 1;
  }

  /// Smallest register width whose period covers `count` values.
  static int bits_for(std::uint64_t count);

 private:
  int bits_;
  std::uint32_t taps_;
  std::uint32_t mask_;
  std::uint32_t state_;
};

/// Iterates the indices [0, size) in LFSR order: a full pseudo-random
/// permutation with O(1) state. Wraps GaloisLfsr with rejection of
/// out-of-range values (expected < 2 rejected steps per emitted index).
class LfsrPermutation {
 public:
  /// `size` must be >= 1. `seed` varies the starting point of the cycle so
  /// distinct vantage points walk the (same) cycle from different offsets —
  /// exactly the desynchronisation the paper uses.
  LfsrPermutation(std::uint32_t size, std::uint32_t seed);

  /// Returns the next index, or nullopt once all `size` indices were
  /// emitted.
  std::optional<std::uint32_t> next();

  [[nodiscard]] std::uint32_t size() const { return size_; }
  [[nodiscard]] std::uint32_t emitted() const { return emitted_; }

 private:
  GaloisLfsr lfsr_;
  std::uint32_t size_;
  std::uint32_t emitted_ = 0;
  std::uint32_t first_state_;
  bool exhausted_ = false;
};

}  // namespace anycast::rng
