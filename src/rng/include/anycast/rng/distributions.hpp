// Small distribution helpers over anycast::rng::Xoshiro256.
//
// We avoid <random>'s distributions for the simulator's hot paths because
// their results are not reproducible across standard-library
// implementations; these are bit-exact everywhere.
#pragma once

#include <cstdint>
#include <vector>

#include "anycast/rng/random.hpp"

namespace anycast::rng {

/// Uniform double in [0, 1).
double uniform01(Xoshiro256& gen);

/// Deterministic uniform [0, 1) draw from a 64-bit key: SplitMix64 seeded
/// with the key, first output discarded (decorrelates sequential keys).
/// The shared idiom behind per-VP churn coins, per-VP drop thresholds, the
/// internet's per-path hashes, and fault-plan schedules. Bit-exact
/// everywhere.
double hash_uniform01(std::uint64_t key);

/// Order-sensitive three-component key mix for `hash_uniform01`.
std::uint64_t hash_key(std::uint64_t a, std::uint64_t b, std::uint64_t c);

/// Uniform double in [lo, hi).
double uniform(Xoshiro256& gen, double lo, double hi);

/// Uniform integer in [0, bound). `bound` must be >= 1.
std::uint64_t uniform_index(Xoshiro256& gen, std::uint64_t bound);

/// Bernoulli trial with success probability p (clamped to [0,1]).
bool bernoulli(Xoshiro256& gen, double p);

/// Exponential with the given mean (inverse-CDF method).
double exponential(Xoshiro256& gen, double mean);

/// Log-normal parameterised by the mu/sigma of the underlying normal
/// (Box-Muller on the underlying normal).
double lognormal(Xoshiro256& gen, double mu, double sigma);

/// Standard normal via Box-Muller.
double normal(Xoshiro256& gen, double mean, double stddev);

/// Samples an index in [0, weights.size()) proportionally to weights.
/// Weights must be non-negative with a positive sum.
std::size_t weighted_index(Xoshiro256& gen, const std::vector<double>& weights);

/// Zipf-distributed rank in [0, n) with exponent s, via inverse CDF over a
/// precomputed table. Suitable for the heavy-tailed deployment-size and
/// open-port-count distributions of Sec. 4.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);
  std::size_t sample(Xoshiro256& gen) const;
  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Fisher-Yates shuffle (bit-exact, unlike std::shuffle).
template <typename T>
void shuffle(Xoshiro256& gen, std::vector<T>& values) {
  for (std::size_t i = values.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(uniform_index(gen, i));
    using std::swap;
    swap(values[i - 1], values[j]);
  }
}

}  // namespace anycast::rng
