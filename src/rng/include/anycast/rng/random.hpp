// Deterministic pseudo-random generators.
//
// Every stochastic component of the simulator takes an explicit seed so that
// censuses, benchmarks, and tests are exactly reproducible. We use
// SplitMix64 for seeding/stream-splitting and xoshiro256** as the workhorse
// generator (both public-domain algorithms by Blackman & Vigna).
#pragma once

#include <array>
#include <cstdint>

namespace anycast::rng {

/// SplitMix64: a tiny, statistically strong 64-bit generator mainly used to
/// expand one seed into many independent sub-seeds.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast all-purpose 64-bit generator.
/// Satisfies UniformRandomBitGenerator so it plugs into <random> if needed.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 mixer(seed);
    for (auto& word : state_) word = mixer.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  constexpr result_type operator()() { return next(); }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derives an independent generator for a named sub-stream, so components
  /// can be added/removed without perturbing each other's randomness.
  [[nodiscard]] constexpr Xoshiro256 split(std::uint64_t stream_tag) const {
    SplitMix64 mixer(state_[0] ^ (stream_tag * 0x9E3779B97F4A7C15ull));
    return Xoshiro256(mixer.next());
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace anycast::rng
