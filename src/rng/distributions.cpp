#include "anycast/rng/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace anycast::rng {

double uniform01(Xoshiro256& gen) {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(gen.next() >> 11) * 0x1.0p-53;
}

double uniform(Xoshiro256& gen, double lo, double hi) {
  return lo + (hi - lo) * uniform01(gen);
}

double hash_uniform01(std::uint64_t key) {
  SplitMix64 mixer(key);
  mixer.next();  // discard: adjacent keys share high state bits
  return static_cast<double>(mixer.next() >> 11) * 0x1.0p-53;
}

std::uint64_t hash_key(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  return a * 0x9E3779B97F4A7C15ull ^ b * 0xC2B2AE3D27D4EB4Full ^
         c * 0x165667B19E3779F9ull;
}

std::uint64_t uniform_index(Xoshiro256& gen, std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("uniform_index: bound == 0");
  // Rejection sampling to kill modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t draw;
  do {
    draw = gen.next();
  } while (draw >= limit);
  return draw % bound;
}

bool bernoulli(Xoshiro256& gen, double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01(gen) < p;
}

double exponential(Xoshiro256& gen, double mean) {
  // -mean * log(1 - U); 1-U avoids log(0).
  return -mean * std::log1p(-uniform01(gen));
}

double normal(Xoshiro256& gen, double mean, double stddev) {
  // Box-Muller; we deliberately discard the second variate to keep the
  // sampler stateless (reproducibility beats a factor of two here).
  double u1 = uniform01(gen);
  const double u2 = uniform01(gen);
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double radius = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * radius *
                    std::cos(2.0 * std::numbers::pi * u2);
}

double lognormal(Xoshiro256& gen, double mu, double sigma) {
  return std::exp(normal(gen, mu, sigma));
}

std::size_t weighted_index(Xoshiro256& gen,
                           const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("weighted_index: negative weight");
    total += w;
  }
  if (!(total > 0.0)) {
    throw std::invalid_argument("weighted_index: weights sum to zero");
  }
  double point = uniform01(gen) * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    point -= weights[i];
    if (point < 0.0) return i;
  }
  return weights.size() - 1;  // numeric tail
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n == 0");
  cdf_.resize(n);
  double accumulated = 0.0;
  for (std::size_t rank = 0; rank < n; ++rank) {
    accumulated += 1.0 / std::pow(static_cast<double>(rank + 1), exponent);
    cdf_[rank] = accumulated;
  }
  for (double& value : cdf_) value /= accumulated;
}

std::size_t ZipfSampler::sample(Xoshiro256& gen) const {
  const double point = uniform01(gen);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), point);
  return static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cdf_.begin(),
                               static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

}  // namespace anycast::rng
