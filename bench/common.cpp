#include "common.hpp"

#include <algorithm>
#include <cinttypes>

namespace anycast::bench {

BenchWorld::BenchWorld(const BenchConfig& config)
    : internet([&config] {
        net::WorldConfig world_config;
        world_config.seed = config.seed;
        world_config.unicast_alive_slash24 = config.unicast_alive_slash24;
        world_config.unicast_silent_slash24 = config.unicast_silent_slash24;
        world_config.unicast_dead_slash24 = config.unicast_dead_slash24;
        return world_config;
      }()),
      vps(net::make_planetlab(
          {.node_count = config.vp_count,
           .seed = config.seed ^ 0xF1E1D})),
      full_hitlist(census::Hitlist::from_world(internet)),
      hitlist(full_hitlist.without_dead()) {
  combined = census::CensusMatrix(hitlist.size());
  concurrency::ThreadPool pool(
      static_cast<std::size_t>(std::max(0, config.threads)));
  for (int c = 0; c < config.census_count; ++c) {
    census::FastPingConfig fastping;
    fastping.seed = config.seed + static_cast<std::uint64_t>(c) * 101;
    fastping.probe_rate_pps = config.probe_rate_pps;
    fastping.vp_availability = config.vp_availability;
    census::CensusOutput output = run_census(
        internet, vps, hitlist, blacklist, fastping, /*faults=*/nullptr,
        &pool);
    summaries.push_back(std::move(output.summary));
    combined.combine_min(output.data);
    censuses.push_back(std::move(output.data));
  }
}

bool scaling_valid() { return concurrency::default_thread_count() >= 2; }

void warn_if_scaling_invalid(const char* bench_name) {
  if (scaling_valid()) return;
  std::printf(
      "\n"
      "  ********************************************************************\n"
      "  *  WARNING: %zu hardware thread(s) — scaling numbers are INVALID.  \n"
      "  *  Every thread sweep below serializes on one core; speedups are   \n"
      "  *  flat by construction. %s emits \"scaling_valid\": false.\n"
      "  ********************************************************************\n",
      concurrency::default_thread_count(), bench_name);
}

analysis::CensusReport analyze_combined(const BenchWorld& world,
                                        concurrency::ThreadPool* pool) {
  return analysis::CensusReport(world.internet,
                                analyze_data(world, world.combined, pool));
}

std::vector<analysis::TargetOutcome> analyze_data(
    const BenchWorld& world, const census::CensusMatrix& data,
    concurrency::ThreadPool* pool) {
  const analysis::CensusAnalyzer analyzer(world.vps, geo::world_index());
  return analyzer.analyze(data, world.hitlist, /*min_vps=*/2, pool);
}

void print_title(const std::string& title) {
  std::printf("\n");
  print_rule();
  std::printf("  %s\n", title.c_str());
  print_rule();
}

void print_subtitle(const std::string& subtitle) {
  std::printf("\n--- %s ---\n", subtitle.c_str());
}

void print_rule() {
  std::printf("=======================================================================\n");
}

void print_compare(const char* metric, const std::string& paper,
                   const std::string& measured) {
  std::printf("  %-38s %16s %16s\n", metric, paper.c_str(),
              measured.c_str());
}

std::string fmt(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
  return buffer;
}

std::string fmt_int(std::uint64_t value) {
  // Group thousands for readability.
  const std::string digits = std::to_string(value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return {out.rbegin(), out.rend()};
}

std::string fmt_pct(double fraction, int decimals) {
  return fmt(fraction * 100.0, decimals) + "%";
}

}  // namespace anycast::bench
