// Paper-scale data-plane bench: the paper's census is 6.6M /24 targets
// probed from ~1000 vantage points (Sec. 3). A monolithic CSR matrix at
// that scale is fine for RAM-rich analysis boxes but not for the
// fixed-budget probing hosts the campaign actually runs on — this bench
// drives the sharded data plane (anycast/census/sharded.hpp) through a
// synthetic full-scale census and proves the two claims DESIGN.md §15
// makes:
//
//   1. Bounded memory: the streaming fragment combine plus the spill
//      tier keep peak RSS inside a declared budget (default 2 GiB)
//      while assembling ~2 GB of census values.
//   2. Element identity: at a cross-checkable scale, the sharded
//      assembly (any shard size, spilling on or off) is element-
//      identical to the monolithic CensusMatrixBuilder fed the same
//      fragments.
//
// The synthetic census is deterministic and needs no simulated world at
// this scale: VP v covers the arithmetic progression t ≡ r_v (mod m_v)
// with prime-ish strides around 30, matching the real census's ~3%
// per-VP response density (6.6M targets x 1000 VPs -> ~220M samples,
// ~1.8 GB of values). RTTs are a pure function of (vp, target), with a
// sprinkling of contradictory low-RTT rows standing in for anycast.
//
//   bench_paper_scale [targets] [vps] [budget_mb] [shard_targets] [cross]
//
// defaults: 6600000 1000 2048 262144 200000. CI runs a reduced-scale
// smoke (same code path, smaller numbers); the committed
// BENCH_scale.json is a full-scale run.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#if defined(__linux__)
#include <malloc.h>
#endif

#include "anycast/census/census.hpp"
#include "anycast/census/sharded.hpp"
#include "common.hpp"

namespace {

using namespace anycast;

// ---- RSS accounting (Linux /proc; zeros elsewhere) -------------------------

std::size_t proc_status_kb(const char* key) {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t kb = 0;
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0) {
      kb = static_cast<std::size_t>(std::strtoull(line + key_len, nullptr, 10));
      break;
    }
  }
  std::fclose(f);
  return kb;
#else
  (void)key;
  return 0;
#endif
}

std::size_t peak_rss_kb() { return proc_status_kb("VmHWM:"); }
std::size_t current_rss_kb() { return proc_status_kb("VmRSS:"); }

/// Resets the kernel's peak-RSS watermark so VmHWM after this call
/// reports the peak of the phase under test, not of process startup.
void reset_peak_rss() {
#if defined(__linux__)
  malloc_trim(0);
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f != nullptr) {
    std::fputs("5", f);
    std::fclose(f);
  }
#endif
}

// ---- The synthetic census --------------------------------------------------

/// Prime-ish strides cycled per VP: every VP covers targets t with
/// t % stride == offset, i.e. ~1/30 of the hitlist, like a real VP's
/// responsive slice of the paper's 6.6M-target census.
constexpr std::uint32_t kStrides[] = {29, 31, 37, 41, 43, 23, 47, 53};

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Deterministic RTT for (vp, target). Targets on the 10007 lattice get
/// contradictory near-zero RTTs from every VP — the speed-of-light
/// signature of anycast — so downstream consumers see both row shapes.
float synthetic_rtt(std::uint32_t vp, std::uint32_t target) {
  if (target % 10007 == 0) {
    return 1.0F + static_cast<float>(vp % 5);
  }
  const std::uint64_t h =
      splitmix64((static_cast<std::uint64_t>(vp) << 32) | target);
  return 10.0F + static_cast<float>(h % 20000) / 100.0F;  // 10..210 ms
}

/// VP v's row fragment: sorted by target index, per-target minima — the
/// exact shape vp_row_fragment hands the census reduction.
std::vector<census::TargetRtt> synthetic_fragment(std::uint32_t vp,
                                                  std::size_t targets) {
  const std::uint32_t stride =
      kStrides[vp % (sizeof kStrides / sizeof kStrides[0])];
  const std::uint32_t offset =
      static_cast<std::uint32_t>(splitmix64(vp) % stride);
  std::vector<census::TargetRtt> fragment;
  fragment.reserve(targets / stride + 1);
  for (std::uint64_t t = offset; t < targets; t += stride) {
    fragment.push_back({static_cast<std::uint32_t>(t),
                        synthetic_rtt(vp, static_cast<std::uint32_t>(t))});
  }
  return fragment;
}

/// Order-sensitive digest over every row of a matrix-like (FNV-1a over
/// (target, vp, rtt bits)): equal digests + equal observation counts is
/// the cheap cross-scale identity check.
template <typename MatrixT>
std::uint64_t census_digest(const MatrixT& data) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h = (h ^ v) * 0x100000001B3ULL;
  };
  for (std::uint32_t t = 0; t < data.target_count(); ++t) {
    for (const census::VpRtt& sample : data.measurements(t)) {
      std::uint32_t rtt_bits = 0;
      std::memcpy(&rtt_bits, &sample.rtt_ms, sizeof rtt_bits);
      mix(t);
      mix(sample.vp);
      mix(rtt_bits);
    }
  }
  return h;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Streams the synthetic census into a sharded builder, one fragment at
/// a time (the generator itself is O(one fragment) resident).
census::ShardedCensusMatrix build_sharded(std::size_t targets,
                                          std::size_t vps,
                                          const census::DataPlaneConfig& plane) {
  census::ShardedCensusMatrixBuilder builder(targets, plane);
  for (std::uint32_t v = 0; v < vps; ++v) {
    builder.add_fragment(static_cast<std::uint16_t>(v),
                         synthetic_fragment(v, targets));
  }
  return builder.build();
}

census::CensusMatrix build_monolithic(std::size_t targets, std::size_t vps) {
  census::CensusMatrixBuilder builder(targets);
  for (std::uint32_t v = 0; v < vps; ++v) {
    builder.add_fragment(static_cast<std::uint16_t>(v),
                         synthetic_fragment(v, targets));
  }
  return builder.build();
}

/// Element-wise equality between a sharded matrix and its monolithic
/// twin (never memcmp: VpRtt has padding).
bool element_identical(const census::ShardedCensusMatrix& sharded,
                       const census::CensusMatrix& mono) {
  if (sharded.target_count() != mono.target_count()) return false;
  for (std::uint32_t t = 0; t < mono.target_count(); ++t) {
    const auto a = sharded.measurements(t);
    const auto b = mono.measurements(t);
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].vp != b[i].vp || a[i].rtt_ms != b[i].rtt_ms) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t targets =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 6'600'000;
  const std::size_t vps = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1000;
  const std::size_t budget_mb =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2048;
  const std::size_t shard_targets =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 262'144;
  const std::size_t cross_targets =
      argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 200'000;

  bench::print_title("Paper scale — sharded census data plane, fixed RSS");
  std::printf("  %zu targets x %zu VPs, shard %zu, process budget %zu MiB\n",
              targets, vps, shard_targets, budget_mb);

  const std::filesystem::path spill_dir = "bench_scale_spill";
  std::filesystem::remove_all(spill_dir);

  // The value-tier budget gets half the process budget; staging, shard
  // offset arrays, and allocator slack live in the other half.
  census::DataPlaneConfig plane;
  plane.shard_targets = shard_targets;
  plane.rss_budget_mb = budget_mb / 2;
  plane.spill_dir = spill_dir.string();

  // ---- Phase 1: full-scale sharded build under the budget ----------------
  reset_peak_rss();
  const std::size_t rss_before_kb = current_rss_kb();
  const auto build_start = std::chrono::steady_clock::now();
  census::ShardedCensusMatrix data = build_sharded(targets, vps, plane);
  const double build_seconds = seconds_since(build_start);

  // Digest shard by shard, re-dropping each spilled shard's pages after
  // reading it so the walk itself stays inside the budget.
  const auto digest_start = std::chrono::steady_clock::now();
  std::uint64_t digest = 0xCBF29CE484222325ULL;
  for (std::size_t s = 0; s < data.shard_count(); ++s) {
    const std::uint64_t shard_digest = census_digest(data.shard(s));
    digest = (digest ^ shard_digest) * 0x100000001B3ULL;
    if (data.shard_spilled(s)) data.spill_shard(s);  // re-drop pages
  }
  const double digest_seconds = seconds_since(digest_start);

#if defined(__linux__)
  malloc_trim(0);
#endif
  const std::size_t peak_kb = peak_rss_kb();
  const std::size_t budget_kb = budget_mb * 1024;
  const bool rss_ok = peak_kb > 0 && peak_kb <= budget_kb;
  std::size_t spilled_shards = 0;
  for (std::size_t s = 0; s < data.shard_count(); ++s) {
    if (data.shard_spilled(s)) ++spilled_shards;
  }
  const std::size_t shard_count = data.shard_count();
  const std::size_t observations = data.observation_count();
  const std::size_t total_bytes = data.total_value_bytes();
  const std::size_t resident_bytes = data.resident_value_bytes();

  bench::print_subtitle("full-scale sharded build");
  std::printf("  %-26s %14zu\n", "shards", data.shard_count());
  std::printf("  %-26s %14s\n", "observations",
              bench::fmt_int(observations).c_str());
  std::printf("  %-26s %14.1f\n", "value GB",
              static_cast<double>(total_bytes) / 1e9);
  std::printf("  %-26s %14zu\n", "spilled shards", spilled_shards);
  std::printf("  %-26s %14.1f\n", "resident value MB",
              static_cast<double>(resident_bytes) / 1e6);
  std::printf("  %-26s %14.1f\n", "build seconds", build_seconds);
  std::printf("  %-26s %14.1f\n", "digest seconds", digest_seconds);
  std::printf("  %-26s %14zu  (start %zu)\n", "peak RSS kB", peak_kb,
              rss_before_kb);
  std::printf("  %-26s %14s\n", "within budget",
              rss_ok ? "yes" : "NO — BUDGET EXCEEDED");
  std::printf("  %-26s %16llX\n", "census digest",
              static_cast<unsigned long long>(digest));

  // Release the full-scale plane before the cross-check allocates, so
  // the cross-check cannot ride on already-counted pages.
  data = census::ShardedCensusMatrix();

  // ---- Phase 2: reduced-scale element-identity cross-check ---------------
  bench::print_subtitle("cross-check vs monolithic (reduced scale)");
  const std::size_t cvps = std::min<std::size_t>(vps, 200);
  const census::CensusMatrix mono = build_monolithic(cross_targets, cvps);
  const std::uint64_t mono_digest = census_digest(mono);

  struct CrossLeg {
    std::size_t shard_targets;
    std::size_t rss_budget_mb;  // 0 = never spill
    bool identical = false;
  };
  std::vector<CrossLeg> legs = {
      {cross_targets, 0},      // single shard, no spill (monolithic twin)
      {4096, 0},               // many shards, all resident
      {997, 1},                // odd shard size + forced spilling
  };
  bool outputs_identical = true;
  for (CrossLeg& leg : legs) {
    census::DataPlaneConfig cross_plane;
    cross_plane.shard_targets = leg.shard_targets;
    cross_plane.rss_budget_mb = leg.rss_budget_mb;
    cross_plane.spill_dir = (spill_dir / "cross").string();
    const census::ShardedCensusMatrix sharded =
        build_sharded(cross_targets, cvps, cross_plane);
    leg.identical = element_identical(sharded, mono) &&
                    census_digest(sharded) == mono_digest;
    outputs_identical = outputs_identical && leg.identical;
    std::printf("  shard %-8zu budget %-4zu %24s\n", leg.shard_targets,
                leg.rss_budget_mb,
                leg.identical ? "element-identical" : "MISMATCH");
  }

  // ---- BENCH_scale.json ---------------------------------------------------
  std::FILE* json = std::fopen("BENCH_scale.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"paper_scale\",\n"
                 "  \"targets\": %zu,\n  \"vps\": %zu,\n"
                 "  \"shard_targets\": %zu,\n  \"shard_count\": %zu,\n"
                 "  \"observations\": %zu,\n"
                 "  \"total_value_bytes\": %zu,\n"
                 "  \"spilled_shards\": %zu,\n"
                 "  \"resident_value_bytes\": %zu,\n"
                 "  \"build_seconds\": %.3f,\n"
                 "  \"digest_seconds\": %.3f,\n"
                 "  \"census_digest\": \"%016llX\",\n"
                 "  \"rss_budget_mb\": %zu,\n"
                 "  \"peak_rss_kb\": %zu,\n"
                 "  \"rss_within_budget\": %s,\n"
                 "  \"cross_check\": {\n"
                 "    \"targets\": %zu,\n    \"vps\": %zu,\n"
                 "    \"legs\": [\n",
                 targets, vps, shard_targets, shard_count,
                 observations, total_bytes, spilled_shards, resident_bytes,
                 build_seconds, digest_seconds,
                 static_cast<unsigned long long>(digest), budget_mb, peak_kb,
                 rss_ok ? "true" : "false", cross_targets, cvps);
    for (std::size_t i = 0; i < legs.size(); ++i) {
      std::fprintf(json,
                   "      {\"shard_targets\": %zu, \"rss_budget_mb\": %zu, "
                   "\"identical\": %s}%s\n",
                   legs[i].shard_targets, legs[i].rss_budget_mb,
                   legs[i].identical ? "true" : "false",
                   i + 1 < legs.size() ? "," : "");
    }
    std::fprintf(json,
                 "    ]\n  },\n  \"outputs_identical\": %s\n}\n",
                 outputs_identical ? "true" : "false");
    std::fclose(json);
    std::printf("  wrote BENCH_scale.json\n");
  }

  std::filesystem::remove_all(spill_dir);
  return rss_ok && outputs_identical ? 0 : 1;
}
