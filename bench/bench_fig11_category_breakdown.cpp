// Fig. 11 — "Breakdown of AS category (only first category is
// considered)": DNS is about one third of anycast ASes, followed by CDN,
// Cloud, Unknown, ISP, Security, Social, Other.
#include "common.hpp"

int main() {
  using namespace anycast;
  using namespace anycast::bench;

  BenchConfig config;
  config.census_count = 2;
  const BenchWorld world(config);
  const analysis::CensusReport report = analyze_combined(world);

  const auto breakdown = report.category_breakdown();
  std::size_t total = 0;
  for (const auto& [category, count] : breakdown) total += count;

  print_title("Fig. 11 — AS category breakdown (" + std::to_string(total) +
              " anycast ASes)");
  // Approximate bar heights read off the paper's figure.
  const std::pair<net::Category, double> paper[] = {
      {net::Category::kDns, 32.0},     {net::Category::kCdn, 13.0},
      {net::Category::kCloud, 13.0},   {net::Category::kUnknown, 11.0},
      {net::Category::kIsp, 9.0},      {net::Category::kSecurity, 5.0},
      {net::Category::kSocialNetwork, 3.0}, {net::Category::kOther, 12.0},
  };
  std::printf("  %-10s %10s %10s   %s\n", "category", "paper[%]",
              "measured", "bar");
  double dns_share = 0.0;
  for (const auto& [category, paper_pct] : paper) {
    const auto it = breakdown.find(category);
    const double share =
        it == breakdown.end()
            ? 0.0
            : 100.0 * static_cast<double>(it->second) /
                  static_cast<double>(total);
    if (category == net::Category::kDns) dns_share = share;
    std::string bar(static_cast<std::size_t>(share / 1.5), '#');
    std::printf("  %-10s %9.0f%% %9.1f%%   %s\n",
                std::string(net::to_string(category)).c_str(), paper_pct,
                share, bar.c_str());
  }
  std::printf("\n  shape: DNS is the single largest class (~1/3), i.e.\n"
              "  two thirds of IP-anycast ASes now do something OTHER than\n"
              "  DNS — the paper's headline departure from prior belief.\n");
  return dns_share > 20.0 && dns_share < 55.0 ? 0 : 1;
}
