// Tab. 1 — "Textual (0) vs binary (1-4) censuses": per-host and total
// output size, and analysis duration.
//
// Paper: csv 270 MB/host, 79 GB/census, > 3 days of analysis (including
// on-the-fly resorting of ~300 LFSR-ordered lists); binary 21 MB/host,
// 6 GB/census, 3 h. The bench encodes one VP's real observation stream in
// both formats, extrapolates sizes to the paper's scale, and times the
// decode+collate step that dominated the analysis.
#include <chrono>

#include "common.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  using namespace anycast;
  using namespace anycast::bench;

  net::WorldConfig world_config;
  world_config.seed = 2015;
  world_config.unicast_alive_slash24 = 12000;
  world_config.unicast_silent_slash24 = 14000;
  world_config.unicast_dead_slash24 = 14000;
  const net::SimulatedInternet internet(world_config);
  const auto vps = net::make_planetlab({.node_count = 1, .seed = 70});
  const census::Hitlist hitlist =
      census::Hitlist::from_world(internet).without_dead();
  census::Greylist blacklist;
  census::Greylist greylist;
  const census::FastPingResult vp_run = census::run_fastping(
      internet, vps[0], hitlist, blacklist, greylist,
      census::FastPingConfig{});

  const double scale =
      kPaperHitlistSize / static_cast<double>(hitlist.size());
  constexpr double kPaperVps = 300.0;

  // Encode both formats and time a decode + per-target collation pass —
  // the analysis step whose cost Tab. 1 reports.
  const auto text = census::encode_textual(vp_run.observations);
  const auto binary = census::encode_binary(vp_run.observations);

  auto start = std::chrono::steady_clock::now();
  const auto text_decoded = census::decode_textual(text);
  const double text_decode_s = seconds_since(start);

  start = std::chrono::steady_clock::now();
  const auto binary_decoded = census::decode_binary(binary);
  const double binary_decode_s = seconds_since(start);

  if (text_decoded.size() != vp_run.observations.size() ||
      !binary_decoded.has_value() ||
      binary_decoded->size() != vp_run.observations.size()) {
    std::fprintf(stderr, "round-trip mismatch\n");
    return 1;
  }

  const double text_host_mb = static_cast<double>(text.size()) * scale / 1e6;
  const double binary_host_mb =
      static_cast<double>(binary.size()) * scale / 1e6;

  print_title("Tab. 1 — textual vs binary census formats");
  std::printf("  one VP stream: %s observations (%s probed targets)\n",
              fmt_int(vp_run.observations.size()).c_str(),
              fmt_int(vp_run.probes_sent).c_str());
  std::printf("\n  %-26s %20s %20s\n", "metric", "textual (census 0)",
              "binary (census 1-4)");
  std::printf("  %-26s %17.0f MB %17.0f MB\n",
              "size/host (paper: 270/21)", text_host_mb, binary_host_mb);
  std::printf("  %-26s %17.1f GB %17.1f GB\n",
              "size/census (paper: 79/6)", text_host_mb * kPaperVps / 1e3,
              binary_host_mb * kPaperVps / 1e3);
  std::printf("  %-26s %18.2f s %18.2f s\n", "decode+collate (this host)",
              text_decode_s, binary_decode_s);
  std::printf("  %-26s %18.1f h %18.1f h\n",
              "extrapolated full analysis",
              text_decode_s * scale * kPaperVps / 3600.0 * 4.0,
              binary_decode_s * scale * kPaperVps / 3600.0 * 4.0);
  std::printf("\n  shape: binary is ~%0.0fx smaller and ~%0.0fx faster to\n"
              "  ingest (paper: >3 days -> 3 h, 79 GB -> 6 GB).\n",
              text_host_mb / binary_host_mb, text_decode_s / binary_decode_s);
  return text_host_mb > 5.0 * binary_host_mb ? 0 : 1;
}
