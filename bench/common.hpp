// Shared infrastructure for the per-figure bench binaries.
//
// Each bench regenerates one table or figure of the paper's evaluation on
// a scaled-down world: the anycast population is at full catalog size
// (1,696 /24s in 346 ASes), while the unicast background is sampled at
// roughly 1:160 of the real Internet so a full census takes seconds, not
// hours. Where a paper number depends on the absolute universe size (e.g.
// the Fig. 4 funnel), benches print both the measured value and the value
// extrapolated back to the paper's 6.6M-target hitlist.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "anycast/analysis/analyzer.hpp"
#include "anycast/analysis/report.hpp"
#include "anycast/census/census.hpp"
#include "anycast/concurrency/thread_pool.hpp"
#include "anycast/geo/city_index.hpp"
#include "anycast/net/internet.hpp"
#include "anycast/net/platform.hpp"

namespace anycast::bench {

/// Paper-scale constants, for extrapolation columns.
inline constexpr double kPaperHitlistSize = 6.6e6;
inline constexpr double kPaperRoutedSlash24 = 10.6e6;

struct BenchConfig {
  std::uint64_t seed = 2015;  // census year, for flavour
  std::uint32_t unicast_alive_slash24 = 22000;
  std::uint32_t unicast_silent_slash24 = 26000;
  std::uint32_t unicast_dead_slash24 = 28000;
  int vp_count = 250;
  int census_count = 4;
  double probe_rate_pps = 1000.0;
  double vp_availability = 0.85;  // PL node churn across censuses
  /// Census worker threads (0 = all cores). Results are thread-count
  /// invariant — the merge order is fixed — so every bench regenerates
  /// the same numbers at any setting; 1 keeps the exact serial path.
  int threads = 1;
};

/// A fully-built world with a completed (multi-)census and its analysis.
struct BenchWorld {
  net::SimulatedInternet internet;
  std::vector<net::VantagePoint> vps;
  census::Hitlist full_hitlist;  // including dead space
  census::Hitlist hitlist;       // probed targets
  census::Greylist blacklist;
  std::vector<census::CensusMatrix> censuses;
  std::vector<census::CensusSummary> summaries;
  census::CensusMatrix combined;

  explicit BenchWorld(const BenchConfig& config = {});

  /// Scale factor from this world's probed hitlist to the paper's.
  [[nodiscard]] double hitlist_scale() const {
    return kPaperHitlistSize / static_cast<double>(hitlist.size());
  }
};

/// Whether speedup/scaling numbers measured on this host mean anything:
/// with fewer than 2 hardware threads every "parallel" phase serializes
/// on one core, so thread-sweep curves are flat by construction, not by
/// defect. Benches that report scaling MUST emit this as
/// `"scaling_valid"` in their JSON and print a prominent warning when it
/// is false, so a single-core CI host cannot masquerade as a scaling
/// regression (or a scaling win).
[[nodiscard]] bool scaling_valid();

/// Prints the prominent single-core disclaimer when !scaling_valid().
void warn_if_scaling_invalid(const char* bench_name);

/// Analysis over the combined census (detection + iGreedy + attribution).
/// A multi-lane `pool` shards the sweep; the report is identical either
/// way.
analysis::CensusReport analyze_combined(const BenchWorld& world,
                                        concurrency::ThreadPool* pool =
                                            nullptr);
std::vector<analysis::TargetOutcome> analyze_data(
    const BenchWorld& world, const census::CensusMatrix& data,
    concurrency::ThreadPool* pool = nullptr);

// ---- Table rendering -------------------------------------------------------

void print_title(const std::string& title);
void print_subtitle(const std::string& subtitle);
void print_rule();

/// "paper vs measured" convenience row.
void print_compare(const char* metric, const std::string& paper,
                   const std::string& measured);

std::string fmt(double value, int decimals = 1);
std::string fmt_int(std::uint64_t value);
std::string fmt_pct(double fraction, int decimals = 0);

}  // namespace anycast::bench
