// Fig. 4 — "Anycast census at a glance: typical census magnitude".
//
// The funnel: O(10^7) hitlist targets -> fewer than half send a reply ->
// O(10^5) ICMP errors feed the greylist -> O(10^6) valid echo-reply targets
// analysed -> O(10^3) anycast /24s, ~0.1 per mille of the routed space.
// The bench runs one full census on the scaled world and prints each stage,
// measured and extrapolated to the paper's 6.6M-target hitlist.
#include <algorithm>

#include "common.hpp"

int main() {
  using namespace anycast;
  using namespace anycast::bench;

  BenchConfig config;
  config.census_count = 1;
  const BenchWorld world(config);
  const auto& summary = world.summaries.front();

  const double scale = world.hitlist_scale();
  const double per_vp_probes =
      static_cast<double>(summary.probes_sent) /
      static_cast<double>(std::max<std::size_t>(1, summary.active_vps));
  const std::size_t responsive = world.censuses[0].responsive_targets(1);
  const auto outcomes = analyze_data(world, world.censuses[0]);

  print_title("Fig. 4 — census funnel (one census, " +
              std::to_string(world.vps.size()) + " VPs)");
  std::printf("  world: %s routed /24 (%s probed after dead-space removal); "
              "scale 1:%0.0f vs paper\n",
              fmt_int(world.full_hitlist.size()).c_str(),
              fmt_int(world.hitlist.size()).c_str(), scale);
  std::printf("\n  %-38s %16s %16s\n", "stage", "paper (~)", "measured*scale");
  print_compare("hitlist targets per VP", "6,600,000",
                fmt_int(static_cast<std::uint64_t>(per_vp_probes * scale)));
  print_compare("echo replies (targets, O(10^6))", "~3,000,000",
                fmt_int(static_cast<std::uint64_t>(
                    static_cast<double>(responsive) * scale)));
  print_compare(
      "reply ratio (<50%)", "<50%",
      fmt_pct(static_cast<double>(responsive) /
              static_cast<double>(world.hitlist.size()), 1));
  print_compare("ICMP errors -> greylist (O(10^5))", "~100,000",
                fmt_int(static_cast<std::uint64_t>(
                    static_cast<double>(summary.greylist_new) * scale)));
  print_compare("anycast /24 detected (O(10^3))", "1,696 (combined)",
                fmt_int(outcomes.size()));

  // The anycast population is NOT scaled (full catalog), so its share of
  // the scaled universe overstates the paper's 0.1 per mille; report the
  // share against the extrapolated universe instead.
  const double share = static_cast<double>(outcomes.size()) /
                       (static_cast<double>(world.hitlist.size()) * scale);
  print_compare("anycast share of IPv4 (/24 basis)", "~0.01%",
                fmt(share * 100.0, 4) + "%");

  print_subtitle("greylist code breakdown (Sec. 3.3)");
  const auto& greylist = world.blacklist;
  const double total = static_cast<double>(
      greylist.admin_filtered_count() + greylist.host_prohibited_count() +
      greylist.net_prohibited_count());
  std::printf("  %-38s %16s %16s\n", "code", "paper", "measured");
  print_compare("type 3 code 13 (admin filtered)", "98.5%",
                fmt_pct(greylist.admin_filtered_count() / total, 1));
  print_compare("type 3 code 10 (host prohibited)", "1.3%",
                fmt_pct(greylist.host_prohibited_count() / total, 1));
  print_compare("type 3 code 9 (net prohibited)", "0.2%",
                fmt_pct(greylist.net_prohibited_count() / total, 1));
  return 0;
}
