// Fig. 14 — "Overall nmap portscan statistics and Top-10 open TCP ports
// (per AS and per /24)".
//
// Header: 812 responsive IPs, 81 ASes with >= 1 open port, 10,499 distinct
// ports (185 SSL), 457 well-known services, 30 software packages. The two
// rankings demonstrate class imbalance: per-/24 counts are dominated by
// CloudFlare's 328 /24s and its alternate-HTTP port set.
#include "anycast/portscan/scanner.hpp"
#include "common.hpp"

int main() {
  using namespace anycast;
  using namespace anycast::bench;

  net::WorldConfig world_config;
  world_config.seed = 2015;
  world_config.unicast_alive_slash24 = 100;
  world_config.unicast_dead_slash24 = 100;
  const net::SimulatedInternet internet(world_config);

  const portscan::PortScanner scanner(internet);
  const auto scans = scanner.scan_all(internet.deployments().subspan(0, 100));
  const portscan::ScanStatistics stats = portscan::summarize(scans);

  print_title("Fig. 14 — portscan of the top-100 anycast ASes");
  std::printf("  %-38s %16s %16s\n", "metric", "paper", "measured");
  print_compare("responsive IPs (one per /24)", "812",
                fmt_int(stats.ips_responsive));
  print_compare("ASes with >= 1 open port", "81",
                fmt_int(stats.ases_with_open_port));
  print_compare("distinct open TCP ports", "10,499",
                fmt_int(stats.distinct_open_ports));
  print_compare("  of which SSL services", "185", fmt_int(stats.ssl_ports));
  print_compare("well-known services", "457",
                fmt_int(stats.well_known));
  print_compare("software packages", "30", fmt_int(stats.software_packages));

  const auto print_ranking =
      [](const char* title,
         const std::vector<std::pair<std::uint16_t, std::uint32_t>>& rank) {
        print_subtitle(title);
        std::printf("  %8s %10s %-16s\n", "port", "count", "service");
        for (std::size_t i = 0; i < std::min<std::size_t>(10, rank.size());
             ++i) {
          const auto known = net::classify_port(rank[i].first);
          std::printf("  %8u %10u %-16s\n", rank[i].first, rank[i].second,
                      known ? std::string(known->name).c_str() : "unknown");
        }
      };
  print_ranking("top-10 ports by AS frequency (paper: 53 80 443 179 22 "
                "8080 8083 3306 1935 5252)",
                portscan::rank_ports_by_as(scans));
  print_ranking("top-10 ports by IP/24 frequency (paper: 80 443 8080 53 "
                "2052 2053 2082 2083 8443 2087 — CloudFlare dominance)",
                portscan::rank_ports_by_prefix(scans));

  const bool sane = stats.ases_with_open_port >= 75 &&
                    stats.ases_with_open_port <= 87 &&
                    stats.distinct_open_ports > 10000 &&
                    stats.software_packages >= 27;
  return sane ? 0 : 1;
}
