// Serving-plane bench: the lock-free census query plane under load.
//
// The serving layer's claim (DESIGN.md §16): a published SnapshotView
// answers millions of point lookups per second through the batch API with
// zero locks on the read path, and publishing the next census round is an
// atomic epoch swap — readers never stall, never see a torn view, and the
// tail latency of a batch is pinned whether or not a full-scale census is
// being built and analyzed in the background.
//
// This bench measures exactly that, at the paper's census scale (6.6M /24
// targets x 1000 VPs, ~3% per-VP response density — the same synthetic
// generator as bench_paper_scale):
//
//   1. Build + analyze snapshot A, publish it.
//   2. Idle phase: mixed traffic (batch-256 lookups with point lookups
//      interleaved) against A; per-request latency recorded.
//   3. Build phase: a background thread builds a churned snapshot B from
//      scratch — full matrix build + full analysis — and publishes it
//      mid-traffic. The main thread keeps serving throughout, recording
//      the same latency distribution plus the number of epoch swaps its
//      guards actually observed.
//   4. A pinned guard on A survives the swap: the diff query
//      (changed_since) runs A -> B after B is live, through the guard.
//   5. Fidelity sweep: every target's served answer is compared against
//      the analyzer's own outcomes for the live snapshot
//      (answers_identical in the JSON — the CI gate).
//
//   bench_serving [targets] [vps] [idle_batches] [out_json]
//
// defaults: 6600000 1000 4000 BENCH_serving.json. CI smoke-runs a reduced
// scale (same code path); the committed BENCH_serving.json is full scale.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "anycast/analysis/analyzer.hpp"
#include "anycast/census/census.hpp"
#include "anycast/census/hitlist.hpp"
#include "anycast/geo/city_index.hpp"
#include "anycast/ipaddr/ipv4.hpp"
#include "anycast/net/platform.hpp"
#include "anycast/obs/latency.hpp"
#include "anycast/serving/query.hpp"
#include "anycast/serving/snapshot.hpp"
#include "anycast/serving/store.hpp"
#include "common.hpp"

namespace {

using namespace anycast;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// ---- The synthetic census (bench_paper_scale's generator, plus churn) ------

constexpr std::uint32_t kStrides[] = {29, 31, 37, 41, 43, 23, 47, 53};

/// Deterministic RTT for (vp, target) in census round `round`. Targets on
/// the 10007 lattice get contradictory near-zero RTTs from every VP — the
/// anycast signature. Round 2 churns ~1/256 of the rows (a fresh hash
/// seed), so B differs from A in a realistic sparse way.
float synthetic_rtt(std::uint32_t vp, std::uint32_t target, int round) {
  if (target % 10007 == 0) {
    return 1.0F + static_cast<float>((vp + static_cast<unsigned>(round)) % 5);
  }
  std::uint64_t seed = (static_cast<std::uint64_t>(vp) << 32) | target;
  if (round > 1 && (splitmix64(target) & 0xFF) == 0) {
    seed ^= 0xB0B0'0000ULL + static_cast<std::uint64_t>(round);
  }
  const std::uint64_t h = splitmix64(seed);
  return 10.0F + static_cast<float>(h % 20000) / 100.0F;  // 10..210 ms
}

census::CensusMatrix build_round(std::size_t targets, std::size_t vps,
                                 int round) {
  census::CensusMatrixBuilder builder(targets);
  for (std::uint32_t v = 0; v < vps; ++v) {
    const std::uint32_t stride =
        kStrides[v % (sizeof kStrides / sizeof kStrides[0])];
    const std::uint32_t offset =
        static_cast<std::uint32_t>(splitmix64(v) % stride);
    std::vector<census::TargetRtt> fragment;
    fragment.reserve(targets / stride + 1);
    for (std::uint64_t t = offset; t < targets; t += stride) {
      fragment.push_back(
          {static_cast<std::uint32_t>(t),
           synthetic_rtt(v, static_cast<std::uint32_t>(t), round)});
    }
    builder.add_fragment(static_cast<std::uint16_t>(v), std::move(fragment));
  }
  return builder.build();
}

census::Hitlist synthetic_hitlist(std::size_t targets) {
  std::vector<census::HitlistEntry> entries(targets);
  for (std::uint32_t t = 0; t < targets; ++t) {
    entries[t].representative = ipaddr::IPv4Address::from_slash24_index(t);
    entries[t].score = 3;
  }
  return census::Hitlist(std::move(entries));
}

// ---- Latency recording -----------------------------------------------------

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double percentile_us(std::vector<std::uint32_t>& ns, double p) {
  if (ns.empty()) return 0.0;
  const std::size_t k = static_cast<std::size_t>(
      p * static_cast<double>(ns.size() - 1));
  std::nth_element(ns.begin(), ns.begin() + static_cast<std::ptrdiff_t>(k),
                   ns.end());
  return static_cast<double>(ns[k]) / 1000.0;
}

struct TrafficStats {
  std::vector<std::uint32_t> batch_ns;  // per-request latency (batch + point)
  std::uint64_t lookups = 0;            // point lookups answered
  std::uint64_t requests = 0;
  std::uint64_t swaps_observed = 0;
  double seconds = 0.0;
};

/// One mixed-traffic serving loop: 4 batch-256 requests then 1 point
/// request, repeated. Each request pins an epoch (acquire), answers, and
/// releases; epoch swaps are counted when consecutive pins change id.
/// Runs for `min_requests` requests, or until `*stop_when` becomes true
/// (whichever is LATER), so the build phase always covers the whole
/// background build.
TrafficStats serve_traffic(serving::SnapshotStore& store,
                           std::size_t target_count,
                           std::uint64_t min_requests,
                           const std::atomic<bool>* stop_when,
                           std::uint64_t rng_seed) {
  constexpr std::size_t kBatch = 256;
  TrafficStats stats;
  stats.batch_ns.reserve(min_requests);
  std::vector<std::uint32_t> targets(kBatch);
  std::vector<serving::PointAnswer> answers(kBatch);
  std::uint64_t rng = rng_seed;
  std::uint64_t last_id = 0;
  bool stop_seen = (stop_when == nullptr);
  const auto start = Clock::now();
  for (std::uint64_t request = 0; request < min_requests || !stop_seen;
       ++request) {
    // Check the stop flag BEFORE issuing the request: the publish
    // happens-before the flag store, so the one request issued after
    // observing the flag is guaranteed to pin the freshly published
    // snapshot — the stream always ends with a post-swap request.
    if (!stop_seen && stop_when->load(std::memory_order_acquire)) {
      stop_seen = true;
    }
    const bool point = (request % 5) == 4;  // ~20% single-key traffic
    const std::size_t n = point ? 1 : kBatch;
    for (std::size_t i = 0; i < n; ++i) {
      rng = splitmix64(rng);
      targets[i] = static_cast<std::uint32_t>(rng % target_count);
    }
    const auto t0 = Clock::now();
    {
      serving::ReadGuard guard = store.acquire();
      if (!guard.valid()) continue;
      if (guard->id() != last_id) {
        if (last_id != 0) ++stats.swaps_observed;
        last_id = guard->id();
      }
      guard->lookup_batch({targets.data(), n}, answers.data());
    }
    const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             Clock::now() - t0)
                             .count();
    stats.batch_ns.push_back(static_cast<std::uint32_t>(
        std::min<long long>(elapsed, 0xFFFFFFFFLL)));
    stats.lookups += n;
    ++stats.requests;
  }
  stats.seconds = seconds_since(start);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t targets =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 6'600'000;
  const std::size_t vps = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1000;
  const std::uint64_t idle_batches =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 4000;
  const std::string out_json = argc > 4 ? argv[4] : "BENCH_serving.json";

  bench::print_title("Serving plane — lock-free query QPS under epoch swaps");
  std::printf("  %zu targets x %zu VPs, %llu idle requests\n", targets, vps,
              static_cast<unsigned long long>(idle_batches));

  const auto vantage_points =
      net::make_planetlab({.node_count = static_cast<int>(vps), .seed = 7});
  const analysis::CensusAnalyzer analyzer(vantage_points, geo::world_index());
  const census::Hitlist hitlist = synthetic_hitlist(targets);

  // ---- Snapshot A: build, analyze, publish -------------------------------
  const auto build_a_start = Clock::now();
  census::CensusMatrix matrix_a = build_round(targets, vps, 1);
  const double build_a_seconds = seconds_since(build_a_start);
  const std::size_t observations = matrix_a.observation_count();

  const auto analyze_a_start = Clock::now();
  std::vector<analysis::TargetOutcome> outcomes_a =
      analyzer.analyze(matrix_a, hitlist);
  const double analyze_a_seconds = seconds_since(analyze_a_start);
  const std::size_t anycast_a = outcomes_a.size();

  serving::SnapshotStore store;
  store.publish(serving::SnapshotView::build(std::move(matrix_a),
                                             std::move(outcomes_a),
                                             /*id=*/1, &hitlist));
  std::printf("  snapshot A: %s observations, %zu anycast "
              "(build %.1fs, analyze %.1fs)\n",
              bench::fmt_int(observations).c_str(), anycast_a,
              build_a_seconds, analyze_a_seconds);

  // ---- Pure batch-API segment: the headline point-lookup QPS -------------
  double point_qps = 0.0;
  {
    constexpr std::size_t kBatch = 256;
    const std::uint64_t batches = std::max<std::uint64_t>(idle_batches, 1000);
    std::vector<std::uint32_t> keys(kBatch);
    std::vector<serving::PointAnswer> answers(kBatch);
    std::uint64_t rng = 0xFEEDFACE;
    std::uint64_t sink = 0;
    const auto t0 = Clock::now();
    for (std::uint64_t b = 0; b < batches; ++b) {
      for (std::size_t i = 0; i < kBatch; ++i) {
        rng = splitmix64(rng);
        keys[i] = static_cast<std::uint32_t>(rng % targets);
      }
      serving::ReadGuard guard = store.acquire();
      guard->lookup_batch(keys, answers.data());
      sink += answers[0].vp_count;
    }
    const double seconds = seconds_since(t0);
    point_qps = static_cast<double>(batches * kBatch) / seconds;
    bench::print_subtitle("batch API, steady state");
    std::printf("  %-26s %14s\n", "point lookups",
                bench::fmt_int(batches * kBatch).c_str());
    std::printf("  %-26s %14.0f  (sink %llu)\n", "point QPS", point_qps,
                static_cast<unsigned long long>(sink & 1));
  }

  // ---- Telemetry phase: per-request HDR recording cost + fidelity --------
  // The same batch segment, instrumented the way the serving layer is: a
  // steady_clock stamp pair and one LatencyHisto::record per request. Both
  // runs execute the identical instruction stream; only the recording kill
  // switch differs, so the delta is the histogram's true hot-path cost.
  // The in-process p99 must agree with an exact offline sort of the same
  // samples within the histogram's documented 1/128 relative error.
  double telemetry_overhead_pct = 0.0;
  double p99_inprocess_us = 0.0;
  double p99_offline_us = 0.0;
  double quantile_rel_error_pct = 0.0;
  {
    constexpr std::size_t kBatch = 256;
    const std::uint64_t batches = std::max<std::uint64_t>(idle_batches, 1000);
    obs::LatencyHisto& histo = obs::LatencyHisto::get(
        "bench_serving_request_ns", "ns",
        "bench: per-request batch lookup latency, telemetry phase");
    std::vector<std::uint32_t> sample_ns;
    sample_ns.reserve(batches);
    auto run_segment = [&](bool keep_samples) {
      std::vector<std::uint32_t> keys(kBatch);
      std::vector<serving::PointAnswer> answers(kBatch);
      std::uint64_t rng = 0xC0FFEE42;
      std::uint64_t sink = 0;
      const auto t0 = Clock::now();
      for (std::uint64_t b = 0; b < batches; ++b) {
        for (std::size_t i = 0; i < kBatch; ++i) {
          rng = splitmix64(rng);
          keys[i] = static_cast<std::uint32_t>(rng % targets);
        }
        const auto r0 = Clock::now();
        serving::ReadGuard guard = store.acquire();
        guard->lookup_batch(keys, answers.data());
        sink += answers[0].vp_count;
        const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            Clock::now() - r0)
                            .count();
        const auto clamped = static_cast<std::uint64_t>(
            std::min<long long>(ns, 0xFFFFFFFFLL));
        histo.record(clamped);
        if (keep_samples) {
          sample_ns.push_back(static_cast<std::uint32_t>(clamped));
        }
      }
      const double seconds = seconds_since(t0);
      return static_cast<double>(batches * kBatch) / seconds +
             static_cast<double>(sink & 1) * 1e-9;  // keep the sink live
    };
    // Interleave off/on pairs and take the best of each mode: best-of is
    // robust against a transient stall landing in exactly one segment.
    // The first on-run's histogram delta covers exactly the requests the
    // sample vector kept, so the in-process and offline p99 see the same
    // population.
    double qps_off = 0.0;
    double qps_on = 0.0;
    obs::LatencyHisto::Snapshot window;
    for (int rep = 0; rep < 2; ++rep) {
      obs::set_latency_recording(false);
      qps_off = std::max(qps_off, run_segment(false));
      obs::set_latency_recording(true);
      const obs::LatencyHisto::Snapshot before = histo.snapshot();
      qps_on = std::max(qps_on, run_segment(rep == 0));
      if (rep == 0) window = histo.snapshot().delta_since(before);
    }
    telemetry_overhead_pct = (qps_off - qps_on) / qps_off * 100.0;

    std::vector<std::uint32_t> sorted = sample_ns;
    std::sort(sorted.begin(), sorted.end());
    const auto n = static_cast<double>(sorted.size());
    const std::size_t rank = std::min(
        sorted.size() - 1,
        static_cast<std::size_t>(
            std::max(1.0, std::ceil(0.99 * n))) - 1);
    p99_offline_us = static_cast<double>(sorted[rank]) / 1e3;
    p99_inprocess_us = window.quantile(0.99) / 1e3;
    quantile_rel_error_pct =
        p99_offline_us > 0.0
            ? (p99_inprocess_us - p99_offline_us) / p99_offline_us * 100.0
            : 0.0;

    bench::print_subtitle("telemetry overhead");
    std::printf("  %-26s %10.0f /%10.0f\n", "QPS recording off/on", qps_off,
                qps_on);
    std::printf("  %-26s %13.2f%%\n", "overhead", telemetry_overhead_pct);
    std::printf("  %-26s %10.1f /%8.1f  (%.2f%% rel err)\n",
                "p99 us in-process/offline", p99_inprocess_us, p99_offline_us,
                quantile_rel_error_pct);
  }

  // ---- Idle mixed traffic -------------------------------------------------
  TrafficStats idle =
      serve_traffic(store, targets, idle_batches, nullptr, 0xDEAD0001);
  double p50_idle = percentile_us(idle.batch_ns, 0.50);
  double p99_idle = percentile_us(idle.batch_ns, 0.99);

  // ---- Mixed traffic while snapshot B builds in the background -----------
  std::atomic<bool> build_done{false};
  double build_b_seconds = 0.0;
  double analyze_b_seconds = 0.0;
  std::size_t anycast_b = 0;
  std::vector<analysis::TargetOutcome> oracle_b;  // analyzer's own answers
  std::thread builder([&] {
    const auto b0 = Clock::now();
    census::CensusMatrix matrix_b = build_round(targets, vps, 2);
    build_b_seconds = seconds_since(b0);
    const auto a0 = Clock::now();
    std::vector<analysis::TargetOutcome> outcomes_b =
        analyzer.analyze(matrix_b, hitlist);
    analyze_b_seconds = seconds_since(a0);
    anycast_b = outcomes_b.size();
    oracle_b = outcomes_b;
    store.publish(serving::SnapshotView::build(
        std::move(matrix_b), std::move(outcomes_b), /*id=*/2, &hitlist));
    build_done.store(true, std::memory_order_release);
  });

  // Pin snapshot A across the swap: the diff query below runs against it
  // AFTER B is live — exactly what the epoch store must make safe.
  serving::ReadGuard pinned_a = store.acquire();

  TrafficStats busy =
      serve_traffic(store, targets, idle_batches, &build_done, 0xDEAD0002);
  builder.join();
  double p50_busy = percentile_us(busy.batch_ns, 0.50);
  double p99_busy = percentile_us(busy.batch_ns, 0.99);

  // ---- The diff query: A -> B through the pinned guard -------------------
  serving::ReadGuard current = store.acquire();
  const bool swapped = current.valid() && current->id() == 2;
  const auto diff_start = Clock::now();
  const serving::SnapshotDelta delta =
      current->changed_since(pinned_a.view());
  const double diff_seconds = seconds_since(diff_start);
  pinned_a.release();
  store.drain();

  // ---- Fidelity sweep: served answers == the analyzer's answers ----------
  bool answers_identical = swapped;
  {
    std::vector<std::uint32_t> expect_outcome(targets, UINT32_MAX);
    for (std::uint32_t i = 0; i < oracle_b.size(); ++i) {
      expect_outcome[oracle_b[i].target_index] = i;
    }
    constexpr std::size_t kSweepBatch = 4096;
    std::vector<std::uint32_t> keys(kSweepBatch);
    std::vector<serving::PointAnswer> answers(kSweepBatch);
    for (std::size_t base = 0; base < targets && answers_identical;
         base += kSweepBatch) {
      const std::size_t n = std::min(kSweepBatch, targets - base);
      for (std::size_t i = 0; i < n; ++i) {
        keys[i] = static_cast<std::uint32_t>(base + i);
      }
      current->lookup_batch({keys.data(), n}, answers.data());
      for (std::size_t i = 0; i < n && answers_identical; ++i) {
        const std::uint32_t t = keys[i];
        const bool want_anycast = expect_outcome[t] != UINT32_MAX;
        const std::size_t want_replicas =
            want_anycast ? oracle_b[expect_outcome[t]].result.replicas.size()
                         : 0;
        const auto row = current->matrix().measurements(t);
        if (answers[i].anycast != (want_anycast ? 1 : 0) ||
            answers[i].replica_count != want_replicas ||
            answers[i].vp_count != row.size() ||
            answers[i].responsive != (row.empty() ? 0 : 1)) {
          answers_identical = false;
        }
      }
    }
  }

  const double total_lookups =
      static_cast<double>(idle.lookups + busy.lookups);
  const double qps = total_lookups / (idle.seconds + busy.seconds);

  bench::print_subtitle("mixed traffic");
  std::printf("  %-26s %14.0f\n", "overall QPS", qps);
  std::printf("  %-26s %10.1f /%8.1f\n", "p50 us idle/build", p50_idle,
              p50_busy);
  std::printf("  %-26s %10.1f /%8.1f\n", "p99 us idle/build", p99_idle,
              p99_busy);
  std::printf("  %-26s %14llu\n", "swaps observed",
              static_cast<unsigned long long>(busy.swaps_observed));
  std::printf("  %-26s %14zu  (%.2fs, %zu dirty rows)\n", "diff changes",
              delta.diff.changes.size(), diff_seconds, delta.dirty.size());
  std::printf("  %-26s %14s\n", "answers identical",
              answers_identical ? "yes" : "NO — FIDELITY BROKEN");

  std::FILE* json = std::fopen(out_json.c_str(), "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"serving\",\n"
                 "  \"targets\": %zu,\n"
                 "  \"vps\": %zu,\n"
                 "  \"observations\": %zu,\n"
                 "  \"anycast_a\": %zu,\n"
                 "  \"anycast_b\": %zu,\n"
                 "  \"build_seconds\": %.3f,\n"
                 "  \"analyze_seconds\": %.3f,\n"
                 "  \"point_qps\": %.0f,\n"
                 "  \"telemetry_overhead_pct\": %.3f,\n"
                 "  \"p99_inprocess_us\": %.2f,\n"
                 "  \"p99_offline_us\": %.2f,\n"
                 "  \"quantile_rel_error_pct\": %.3f,\n"
                 "  \"qps\": %.0f,\n"
                 "  \"requests\": %llu,\n"
                 "  \"p50_us\": %.2f,\n"
                 "  \"p99_us\": %.2f,\n"
                 "  \"p50_us_idle\": %.2f,\n"
                 "  \"p99_us_idle\": %.2f,\n"
                 "  \"p50_us_build\": %.2f,\n"
                 "  \"p99_us_build\": %.2f,\n"
                 "  \"swaps_observed\": %llu,\n"
                 "  \"diff_changes\": %zu,\n"
                 "  \"diff_dirty_rows\": %zu,\n"
                 "  \"diff_seconds\": %.3f,\n"
                 "  \"answers_identical\": %s\n"
                 "}\n",
                 targets, vps, observations, anycast_a, anycast_b,
                 build_a_seconds, analyze_a_seconds, point_qps,
                 telemetry_overhead_pct, p99_inprocess_us, p99_offline_us,
                 quantile_rel_error_pct, qps,
                 static_cast<unsigned long long>(idle.requests +
                                                 busy.requests),
                 p50_idle, p99_idle, p50_idle, p99_idle, p50_busy, p99_busy,
                 static_cast<unsigned long long>(busy.swaps_observed),
                 delta.diff.changes.size(), delta.dirty.size(), diff_seconds,
                 answers_identical ? "true" : "false");
    std::fclose(json);
    std::printf("\n  wrote %s\n", out_json.c_str());
  }
  return answers_identical ? 0 : 1;
}
