// Analysis-kernel duel: pre-kernel scalar pipeline vs the vectorized
// geodesy + bitset-MIS kernel, on identical inputs.
//
// Both sides run the SAME driver code — `Options::reference_kernel` routes
// every geometry step (measurement collapse, pairwise disk tests, MIS,
// city queries, the detect prefilter) through the original scalar
// implementations, which the kernel retains verbatim as oracles. The duel
// therefore measures exactly the change under test and can assert the
// contract that makes it safe: byte-identical output, checked here with a
// CRC over every field of every outcome (disk geometry, verdicts, replica
// coordinates at full bit width). Per-phase timings separate the detect
// sweep (the bulk of a census analysis: ~97% unicast rows) from iGreedy on
// detected rows, and a thread-scaling sweep records how the kernel shards.
// Machine-readable results go to BENCH_kernel.json; CI fails the bench if
// outputs_identical is false or the single-threaded speedup misses 4x.
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "anycast/census/storage.hpp"
#include "anycast/concurrency/thread_pool.hpp"
#include "anycast/core/mis.hpp"
#include "common.hpp"

namespace {

using namespace anycast;
using Clock = std::chrono::steady_clock;

constexpr double kTargetSpeedup = 4.0;
constexpr int kRepetitions = 3;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Best-of-N wall clock for a phase (minimum filters scheduler noise; the
/// phases are deterministic, so the fastest run is the least-perturbed).
template <typename Fn>
double time_best(Fn&& fn) {
  double best = 1e300;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put32(out, static_cast<std::uint32_t>(v));
  put32(out, static_cast<std::uint32_t>(v >> 32));
}

/// CRC over every observable field of the analysis output, coordinates at
/// full bit width — "byte-identical" is checked, not eyeballed.
std::uint32_t outcome_digest(
    const std::vector<analysis::TargetOutcome>& outcomes) {
  std::vector<std::uint8_t> bytes;
  put64(bytes, outcomes.size());
  for (const analysis::TargetOutcome& outcome : outcomes) {
    put32(bytes, outcome.target_index);
    put32(bytes, outcome.slash24_index);
    put32(bytes, outcome.result.anycast ? 1u : 0u);
    put32(bytes, static_cast<std::uint32_t>(outcome.result.iterations));
    put64(bytes, outcome.result.usable_measurements);
    put64(bytes, outcome.result.first_round_replicas);
    put64(bytes, outcome.result.replicas.size());
    for (const core::Replica& replica : outcome.result.replicas) {
      put32(bytes, replica.vp_id);
      put64(bytes, std::bit_cast<std::uint64_t>(
                       replica.disk.center().latitude()));
      put64(bytes, std::bit_cast<std::uint64_t>(
                       replica.disk.center().longitude()));
      put64(bytes, std::bit_cast<std::uint64_t>(replica.disk.radius_km()));
      put64(bytes,
            std::bit_cast<std::uint64_t>(replica.location.latitude()));
      put64(bytes,
            std::bit_cast<std::uint64_t>(replica.location.longitude()));
    }
  }
  return census::crc32(bytes);
}

struct PhaseRow {
  const char* name;
  double reference_s = 0.0;
  double kernel_s = 0.0;
  bool identical = false;
};

}  // namespace

int main() {
  bench::BenchConfig config;
  config.census_count = 2;
  const bench::BenchWorld world(config);

  core::Options reference_options;
  reference_options.reference_kernel = true;
  const analysis::CensusAnalyzer reference(world.vps, geo::world_index(),
                                           reference_options);
  const analysis::CensusAnalyzer kernel(world.vps, geo::world_index());

  bench::print_title("Analysis kernel duel: scalar reference vs "
                     "chord-space/bitset kernel");
  bench::warn_if_scaling_invalid("bench_analysis_kernel");
  std::printf("  world: %zu targets x %zu vps, best of %d runs\n\n",
              world.hitlist.size(), world.vps.size(), kRepetitions);

  // ---- Phase 1: detection sweep (every row) -------------------------------
  std::vector<std::uint32_t> detected_reference;
  std::vector<std::uint32_t> detected_kernel;
  const auto sweep = [&](const analysis::CensusAnalyzer& analyzer,
                         std::vector<std::uint32_t>& out) {
    out.clear();
    for (std::uint32_t t = 0; t < world.combined.target_count(); ++t) {
      const auto row = world.combined.measurements(t);
      if (row.size() < 2) continue;
      if (analyzer.detect(row)) out.push_back(t);
    }
  };
  PhaseRow detect_phase{"detect_sweep"};
  detect_phase.reference_s =
      time_best([&] { sweep(reference, detected_reference); });
  detect_phase.kernel_s = time_best([&] { sweep(kernel, detected_kernel); });
  detect_phase.identical = detected_reference == detected_kernel;

  // ---- Phase 2: iGreedy on detected rows ----------------------------------
  const auto igreedy_all = [&](const analysis::CensusAnalyzer& analyzer,
                               const std::vector<std::uint32_t>& rows) {
    std::uint32_t digest = 0;
    std::vector<analysis::TargetOutcome> outcomes;
    for (const std::uint32_t t : rows) {
      analysis::TargetOutcome outcome;
      outcome.target_index = t;
      outcome.result = analyzer.analyze_row(world.combined.measurements(t));
      outcomes.push_back(std::move(outcome));
    }
    digest = outcome_digest(outcomes);
    return digest;
  };
  PhaseRow igreedy_phase{"igreedy_detected"};
  std::uint32_t igreedy_reference_digest = 0;
  std::uint32_t igreedy_kernel_digest = 0;
  igreedy_phase.reference_s = time_best([&] {
    igreedy_reference_digest = igreedy_all(reference, detected_reference);
  });
  igreedy_phase.kernel_s = time_best(
      [&] { igreedy_kernel_digest = igreedy_all(kernel, detected_kernel); });
  igreedy_phase.identical = igreedy_reference_digest == igreedy_kernel_digest;

  // ---- Phase 3: full single-threaded analyze (the headline number) --------
  PhaseRow analyze_phase{"full_analyze"};
  std::uint32_t analyze_reference_digest = 0;
  std::uint32_t analyze_kernel_digest = 0;
  analyze_phase.reference_s = time_best([&] {
    analyze_reference_digest = outcome_digest(
        reference.analyze(world.combined, world.hitlist, 2, nullptr));
  });
  analyze_phase.kernel_s = time_best([&] {
    analyze_kernel_digest = outcome_digest(
        kernel.analyze(world.combined, world.hitlist, 2, nullptr));
  });
  analyze_phase.identical = analyze_reference_digest == analyze_kernel_digest;

  // ---- MIS micro-duel: both MIS solvers against their oracles -------------
  // Greedy runs on every detected row; exact B&B (exponential worst case
  // on both sides) only on instances small enough to finish — full census
  // rows have ~250 disks, far past what branch-and-bound can enumerate.
  constexpr std::size_t kExactMaxDisks = 28;
  constexpr std::size_t kExactMaxRows = 300;
  std::vector<std::vector<geodesy::Disk>> mis_inputs;
  std::vector<std::vector<geodesy::Disk>> exact_inputs;
  for (const std::uint32_t t : detected_kernel) {
    const auto row = world.combined.measurements(t);
    std::vector<geodesy::Disk> disks;
    disks.reserve(row.size());
    for (const census::VpRtt& s : row) {
      if (s.rtt_ms <= 0.0 || s.rtt_ms > 600.0) continue;
      disks.push_back(geodesy::Disk::from_rtt(
          world.vps[s.vp].believed_location, s.rtt_ms));
    }
    if (disks.size() > kExactMaxDisks &&
        exact_inputs.size() < kExactMaxRows) {
      // Truncated copy: still real census geometry, bounded search space.
      exact_inputs.emplace_back(disks.begin(),
                                disks.begin() + kExactMaxDisks);
    } else if (exact_inputs.size() < kExactMaxRows) {
      exact_inputs.push_back(disks);
    }
    mis_inputs.push_back(std::move(disks));
  }
  PhaseRow greedy_phase{"greedy_mis"};
  bool greedy_identical = true;
  greedy_phase.reference_s = time_best([&] {
    for (const auto& disks : mis_inputs) core::reference::greedy_mis(disks);
  });
  greedy_phase.kernel_s = time_best([&] {
    for (const auto& disks : mis_inputs) core::greedy_mis(disks);
  });
  for (const auto& disks : mis_inputs) {
    if (core::reference::greedy_mis(disks) != core::greedy_mis(disks)) {
      greedy_identical = false;
    }
  }
  greedy_phase.identical = greedy_identical;

  PhaseRow exact_phase{"exact_mis"};
  bool exact_identical = true;
  exact_phase.reference_s = time_best([&] {
    for (const auto& disks : exact_inputs) core::reference::exact_mis(disks);
  });
  exact_phase.kernel_s = time_best([&] {
    for (const auto& disks : exact_inputs) core::exact_mis(disks);
  });
  for (const auto& disks : exact_inputs) {
    if (core::reference::exact_mis(disks) != core::exact_mis(disks)) {
      exact_identical = false;
    }
  }
  exact_phase.identical = exact_identical;

  const PhaseRow phases[] = {detect_phase, igreedy_phase, analyze_phase,
                             greedy_phase, exact_phase};
  bench::print_rule();
  std::printf("  %-18s %12s %12s %9s %10s\n", "phase", "reference_s",
              "kernel_s", "speedup", "identical");
  bool outputs_identical = true;
  for (const PhaseRow& phase : phases) {
    const double speedup =
        phase.kernel_s > 0.0 ? phase.reference_s / phase.kernel_s : 0.0;
    std::printf("  %-18s %12.3f %12.3f %8.2fx %10s\n", phase.name,
                phase.reference_s, phase.kernel_s, speedup,
                phase.identical ? "yes" : "NO");
    outputs_identical = outputs_identical && phase.identical;
  }

  const double speedup =
      analyze_phase.kernel_s > 0.0
          ? analyze_phase.reference_s / analyze_phase.kernel_s
          : 0.0;
  const bool meets_target = speedup >= kTargetSpeedup;
  std::printf("\n  single-threaded analyze speedup: %.2fx (target %.1fx) "
              "-> %s\n  outputs identical: %s\n",
              speedup, kTargetSpeedup, meets_target ? "PASS" : "FAIL",
              outputs_identical ? "yes" : "NO — DETERMINISM BUG");

  // ---- Thread-scaling sweep (kernel side) ---------------------------------
  struct ScalePoint {
    std::size_t threads;
    double seconds;
    bool identical;
  };
  std::vector<ScalePoint> scaling;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    concurrency::ThreadPool pool(threads);
    std::uint32_t digest = 0;
    const double s = time_best([&] {
      digest = outcome_digest(
          kernel.analyze(world.combined, world.hitlist, 2, &pool));
    });
    scaling.push_back({threads, s, digest == analyze_kernel_digest});
    outputs_identical = outputs_identical && digest == analyze_kernel_digest;
  }
  std::printf("\n  kernel analyze thread scaling:");
  for (const ScalePoint& point : scaling) {
    std::printf("  %zut=%.3fs", point.threads, point.seconds);
  }
  std::printf("\n");

  std::FILE* json = std::fopen("BENCH_kernel.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"analysis_kernel\",\n"
                 "  \"targets\": %zu,\n  \"vps\": %zu,\n"
                 "  \"detected\": %zu,\n"
                 "  \"hardware_threads\": %zu,\n"
                 "  \"scaling_valid\": %s,\n"
                 "  \"repetitions\": %d,\n"
                 "  \"outputs_identical\": %s,\n"
                 "  \"speedup_single_thread\": %.3f,\n"
                 "  \"target_speedup\": %.1f,\n"
                 "  \"meets_target\": %s,\n  \"phases\": [\n",
                 world.hitlist.size(), world.vps.size(),
                 detected_kernel.size(), concurrency::default_thread_count(),
                 bench::scaling_valid() ? "true" : "false",
                 kRepetitions, outputs_identical ? "true" : "false", speedup,
                 kTargetSpeedup, meets_target ? "true" : "false");
    for (std::size_t i = 0; i < std::size(phases); ++i) {
      const PhaseRow& phase = phases[i];
      std::fprintf(json,
                   "    {\"phase\": \"%s\", \"reference_s\": %.6f, "
                   "\"kernel_s\": %.6f, \"speedup\": %.3f, "
                   "\"identical\": %s}%s\n",
                   phase.name, phase.reference_s, phase.kernel_s,
                   phase.kernel_s > 0.0 ? phase.reference_s / phase.kernel_s
                                        : 0.0,
                   phase.identical ? "true" : "false",
                   i + 1 < std::size(phases) ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"thread_scaling\": [\n");
    for (std::size_t i = 0; i < scaling.size(); ++i) {
      std::fprintf(json,
                   "    {\"threads\": %zu, \"kernel_s\": %.6f, "
                   "\"identical\": %s}%s\n",
                   scaling[i].threads, scaling[i].seconds,
                   scaling[i].identical ? "true" : "false",
                   i + 1 < scaling.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("\n  wrote BENCH_kernel.json\n");
  }
  return outputs_identical && meets_target ? 0 : 1;
}
