// Parallel scaling + memory profile of the census + analysis engine.
//
// The paper's census probes 6.6M /24s from ~300 VPs in ~24h and analyses
// a census in under 3h; both hot loops here are embarrassingly parallel
// (per-VP walks, per-target iGreedy). This bench contrasts the CSR
// `CensusMatrix` data plane against the legacy row-of-vectors layout on
// identical fragments — so the columnar layout win is measured, not
// asserted — then measures census and analysis wall-clock, peak RSS, and
// heap-allocation counts on the default BenchConfig world at 1/2/4/8
// threads, verifying the outputs are identical at every thread count (the
// engine's determinism contract). Machine-readable output goes to
// BENCH_parallel.json (wall-clock trajectory, the original contract) and
// BENCH_columnar.json (the memory story).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <new>
#include <string>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "anycast/census/legacy_census.hpp"
#include "anycast/obs/journal.hpp"
#include "anycast/obs/metrics.hpp"
#include "anycast/obs/progress.hpp"
#include "anycast/obs/trace_export.hpp"
#include "common.hpp"

// ---- Heap-allocation accounting ---------------------------------------------
//
// Global operator new/delete overrides counting every allocation in the
// process. Relaxed atomics: the counters are read only between phases,
// and exact interleaving within a phase does not matter. The CSR value
// arena maps its buffer directly (mmap/mremap, see census.hpp) and so
// bypasses these counters — that undercounts the columnar side by the
// O(1) mappings per build/combine, which cannot change any verdict
// against the legacy side's one allocation per row and growth step.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace anycast;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Process CPU time in seconds. Overhead comparisons on shared or
/// single-core machines need this: wall-clock of an oversubscribed run
/// swings ±10% with scheduler and frequency drift, far above a 3%
/// budget, while added *work* shows up directly in CPU time.
double cpu_seconds() {
#if defined(__linux__) || defined(__APPLE__)
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return std::chrono::duration<double>(
             Clock::now().time_since_epoch())
      .count();
}

/// Median of a sample set (destructive on the copy). Used for paired
/// overhead estimates where a single throttled round would dominate a
/// mean or a best-of.
double median_of(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return 0.5 * (values[mid - 1] + values[mid]);
}

// ---- RSS accounting ---------------------------------------------------------

std::size_t status_kb(const char* field) {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0;
  const std::size_t field_len = std::strlen(field);
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof line, status) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0) {
      kb = static_cast<std::size_t>(
          std::strtoull(line + field_len, nullptr, 10));
      break;
    }
  }
  std::fclose(status);
  return kb;
}

/// VmHWM ("high water mark"): the process's peak RSS in KiB; 0 when
/// /proc is unavailable (non-Linux).
std::size_t peak_rss_kb() { return status_kb("VmHWM:"); }

/// Current RSS in KiB.
std::size_t current_rss_kb() { return status_kb("VmRSS:"); }

/// Returns freed arena pages to the kernel so current RSS approximates
/// the live set — without this, RSS comparisons only see the allocator's
/// high-water arena.
void trim_heap() {
#if defined(__GLIBC__)
  malloc_trim(0);
#endif
}

/// Resets VmHWM to the current RSS (writing "5" to clear_refs), so each
/// phase's peak is measured independently. Returns false when the kernel
/// refuses — peaks then are monotonic over the process lifetime, which is
/// why the legacy phase runs FIRST in the layout comparison: under a
/// monotonic counter the columnar peak can only be overstated by what
/// came before it, understating its win, never faking one.
bool reset_peak_rss() {
  std::FILE* clear = std::fopen("/proc/self/clear_refs", "w");
  if (clear == nullptr) return false;
  const bool ok = std::fputs("5", clear) >= 0;
  return (std::fclose(clear) == 0) && ok;
}

/// One measured phase: wall-clock, allocation deltas, and the phase's own
/// peak RSS (or the running process peak when resets are unsupported).
struct Cost {
  double seconds = 0.0;
  std::uint64_t allocs = 0;
  std::uint64_t alloc_mb = 0;
  std::size_t peak_rss_kb = 0;
};

template <typename Fn>
Cost measure(Fn&& fn) {
  Cost cost;
  trim_heap();
  reset_peak_rss();
  const std::uint64_t count0 = g_alloc_count.load(std::memory_order_relaxed);
  const std::uint64_t bytes0 = g_alloc_bytes.load(std::memory_order_relaxed);
  const auto start = Clock::now();
  fn();
  cost.seconds = seconds_since(start);
  cost.allocs = g_alloc_count.load(std::memory_order_relaxed) - count0;
  cost.alloc_mb =
      (g_alloc_bytes.load(std::memory_order_relaxed) - bytes0) >> 20;
  cost.peak_rss_kb = peak_rss_kb();
  return cost;
}

struct Sample {
  std::string phase;
  int threads = 0;
  double speedup = 1.0;
  Cost cost;
};

/// Fingerprint of one run's output, for the cross-thread-count identity
/// check. Any divergence in rows, summary, or analysis shows up here.
struct Fingerprint {
  std::uint64_t probes = 0;
  std::uint64_t replies = 0;
  std::size_t responsive = 0;
  std::size_t greylisted = 0;
  std::size_t anycast_ip24 = 0;
  std::size_t replicas = 0;

  bool operator==(const Fingerprint&) const = default;
};

/// Splits a built matrix back into per-VP row fragments — the exact shape
/// the census reduction feeds the data plane — so the columnar and legacy
/// layouts can be timed assembling identical input.
std::vector<std::vector<census::TargetRtt>> fragments_of(
    const census::CensusMatrix& data, std::size_t vp_count) {
  std::vector<std::vector<census::TargetRtt>> fragments(vp_count);
  for (std::uint32_t t = 0; t < data.target_count(); ++t) {
    for (const census::VpRtt& sample : data.measurements(t)) {
      fragments[sample.vp].push_back(census::TargetRtt{t, sample.rtt_ms});
    }
  }
  return fragments;
}

/// Retained footprint of whatever is live right now, KiB after trim.
std::size_t retained_kb() {
  trim_heap();
  return current_rss_kb();
}

}  // namespace

int main() {
  const bench::BenchConfig config;  // the default BenchConfig world
  bench::print_title(
      "Parallel scaling — census + analysis wall-clock, RSS, allocations");
  bench::warn_if_scaling_invalid("bench_parallel_scaling");

  net::WorldConfig world_config;
  world_config.seed = config.seed;
  world_config.unicast_alive_slash24 = config.unicast_alive_slash24;
  world_config.unicast_silent_slash24 = config.unicast_silent_slash24;
  world_config.unicast_dead_slash24 = config.unicast_dead_slash24;
  const net::SimulatedInternet internet(world_config);
  const auto vps = net::make_planetlab(
      {.node_count = config.vp_count, .seed = config.seed ^ 0xF1E1D});
  const census::Hitlist hitlist =
      census::Hitlist::from_world(internet).without_dead();
  const analysis::CensusAnalyzer analyzer(vps, geo::world_index());
  const bool rss_resets = reset_peak_rss();
  std::printf("  world: %zu targets x %zu VPs (%zu cores, per-phase RSS %s)\n",
              hitlist.size(), vps.size(), concurrency::default_thread_count(),
              rss_resets ? "resets" : "monotonic");

  // ---- Columnar vs legacy layout on identical fragments --------------------
  //
  // Assemble-and-combine is the data plane's whole job; run it through
  // both containers on the same per-VP fragments (two census passes
  // combined, the Sec. 4.1 workflow). Runs before the scaling loop, on a
  // small process image, so per-phase RSS peaks are not drowned by a
  // prior high-water mark; the legacy side runs first (see reset_peak_rss
  // on why that ordering is conservative). Each side's container
  // footprint is measured as the trimmed-RSS delta released when the
  // combined container is destroyed — malloc-header and capacity-slack
  // overhead included, which is exactly what the CSR layout eliminates.
  bench::print_subtitle("CSR matrix vs legacy row-of-vectors (same input)");
  std::vector<std::vector<census::TargetRtt>> first_fragments;
  std::vector<std::vector<census::TargetRtt>> second_fragments;
  {
    census::Greylist scratch;
    census::FastPingConfig fastping;
    fastping.seed = config.seed ^ 0xC0;
    fastping.probe_rate_pps = config.probe_rate_pps;
    fastping.vp_availability = config.vp_availability;
    const census::CensusMatrix first =
        run_census(internet, vps, hitlist, scratch, fastping).data;
    fastping.seed = config.seed ^ 0xC1;
    const census::CensusMatrix second =
        run_census(internet, vps, hitlist, scratch, fastping).data;
    first_fragments = fragments_of(first, vps.size());
    second_fragments = fragments_of(second, vps.size());
    // The source matrices die here: only the fragment inputs stay live.
  }

  std::size_t legacy_responsive = 0;
  std::size_t legacy_footprint_kb = 0;
  Cost legacy;
  {
    census::LegacyCensusData combined(hitlist.size());
    legacy = measure([&] {
      // The legacy container never took fragment ownership — it re-sorts
      // per record — so it reads the shared inputs in place.
      for (std::size_t vp = 0; vp < first_fragments.size(); ++vp) {
        combined.record_fragment(static_cast<std::uint16_t>(vp),
                                 first_fragments[vp]);
      }
      census::LegacyCensusData other(hitlist.size());
      for (std::size_t vp = 0; vp < second_fragments.size(); ++vp) {
        other.record_fragment(static_cast<std::uint16_t>(vp),
                              second_fragments[vp]);
      }
      combined.combine_min(other);
    });
    legacy_responsive = combined.responsive_targets(2);
    const std::size_t with_container = retained_kb();
    combined = census::LegacyCensusData();
    const std::size_t without = retained_kb();
    legacy_footprint_kb = with_container > without ? with_container - without
                                                  : 0;
  }

  std::size_t columnar_responsive = 0;
  std::size_t columnar_footprint_kb = 0;
  Cost columnar;
  {
    census::CensusMatrix combined;
    columnar = measure([&] {
      // The builder takes fragment ownership — the production census
      // reduction moves each VP's rows in exactly like this, so the
      // originals are consumed, not copied.
      census::CensusMatrixBuilder builder(hitlist.size());
      for (std::size_t vp = 0; vp < first_fragments.size(); ++vp) {
        builder.add_fragment(static_cast<std::uint16_t>(vp),
                             std::move(first_fragments[vp]));
      }
      combined = builder.build();
      for (std::size_t vp = 0; vp < second_fragments.size(); ++vp) {
        builder.add_fragment(static_cast<std::uint16_t>(vp),
                             std::move(second_fragments[vp]));
      }
      combined.combine_min(builder.build());
    });
    columnar_responsive = combined.responsive_targets(2);
    const std::size_t with_container = retained_kb();
    combined = census::CensusMatrix();
    const std::size_t without = retained_kb();
    columnar_footprint_kb = with_container > without
                                ? with_container - without
                                : 0;
  }

  const bool same_result = columnar_responsive == legacy_responsive;
  const bool fewer_allocs = columnar.allocs < legacy.allocs;
  std::printf("  %-24s %14s %14s\n", "metric", "columnar", "legacy");
  std::printf("  %-24s %14.3f %14.3f\n", "seconds", columnar.seconds,
              legacy.seconds);
  std::printf("  %-24s %14llu %14llu\n", "allocations",
              static_cast<unsigned long long>(columnar.allocs),
              static_cast<unsigned long long>(legacy.allocs));
  std::printf("  %-24s %14llu %14llu\n", "allocated MB",
              static_cast<unsigned long long>(columnar.alloc_mb),
              static_cast<unsigned long long>(legacy.alloc_mb));
  std::printf("  %-24s %14zu %14zu\n", "peak RSS KB", columnar.peak_rss_kb,
              legacy.peak_rss_kb);
  std::printf("  %-24s %14zu %14zu\n", "container footprint KB",
              columnar_footprint_kb, legacy_footprint_kb);
  std::printf("  %-24s %14zu %14zu\n", "responsive(2)", columnar_responsive,
              legacy_responsive);
  std::printf("\n  identical result: %s; columnar allocates %s\n",
              same_result ? "yes" : "NO — LAYOUT BUG",
              fewer_allocs ? "less" : "MORE — LAYOUT REGRESSION");
  first_fragments.clear();
  first_fragments.shrink_to_fit();
  second_fragments.clear();
  second_fragments.shrink_to_fit();

  // ---- Wall-clock / memory scaling over thread counts ----------------------

  const int kThreadCounts[] = {1, 2, 4, 8};
  std::vector<Sample> samples;
  Fingerprint reference;
  bool identical = true;

  for (const int threads : kThreadCounts) {
    concurrency::ThreadPool pool(static_cast<std::size_t>(threads));

    // Census phase: one full pass, fresh blacklist so every thread count
    // does identical work.
    census::Greylist blacklist;
    census::FastPingConfig fastping;
    fastping.seed = config.seed;
    fastping.probe_rate_pps = config.probe_rate_pps;
    fastping.vp_availability = config.vp_availability;
    census::CensusOutput output;
    const Cost census_cost = measure([&] {
      output = run_census(internet, vps, hitlist, blacklist, fastping,
                          /*faults=*/nullptr, &pool);
    });

    // Analysis phase: detection sweep + iGreedy over the census rows.
    std::vector<analysis::TargetOutcome> outcomes;
    const Cost analysis_cost = measure([&] {
      outcomes = analyzer.analyze(output.data, hitlist, /*min_vps=*/2, &pool);
    });

    Fingerprint print;
    print.probes = output.summary.probes_sent;
    print.replies = output.summary.echo_replies;
    print.responsive = output.data.responsive_targets(2);
    print.greylisted = blacklist.size();
    print.anycast_ip24 = outcomes.size();
    for (const auto& outcome : outcomes) {
      print.replicas += outcome.result.replicas.size();
    }
    if (threads == kThreadCounts[0]) {
      reference = print;
    } else if (!(print == reference)) {
      identical = false;
    }

    Cost total = census_cost;
    total.seconds += analysis_cost.seconds;
    total.allocs += analysis_cost.allocs;
    total.alloc_mb += analysis_cost.alloc_mb;
    total.peak_rss_kb = std::max(total.peak_rss_kb, analysis_cost.peak_rss_kb);
    samples.push_back({"census", threads, 1.0, census_cost});
    samples.push_back({"analysis", threads, 1.0, analysis_cost});
    samples.push_back({"total", threads, 1.0, total});
  }

  // Speedups against the 1-thread baseline of each phase.
  for (Sample& sample : samples) {
    for (const Sample& base : samples) {
      if (base.phase == sample.phase && base.threads == kThreadCounts[0]) {
        sample.speedup = sample.cost.seconds > 0.0
                             ? base.cost.seconds / sample.cost.seconds
                             : 1.0;
      }
    }
  }

  bench::print_subtitle("wall-clock and memory per phase");
  std::printf("  %-10s %8s %9s %9s %12s %10s %12s\n", "phase", "threads",
              "seconds", "speedup", "allocations", "alloc MB", "peak RSS KB");
  for (const Sample& sample : samples) {
    std::printf("  %-10s %8d %9.3f %8.2fx %12llu %10llu %12zu\n",
                sample.phase.c_str(), sample.threads, sample.cost.seconds,
                sample.speedup,
                static_cast<unsigned long long>(sample.cost.allocs),
                static_cast<unsigned long long>(sample.cost.alloc_mb),
                sample.cost.peak_rss_kb);
  }
  std::printf("\n  outputs identical across thread counts: %s\n",
              identical ? "yes" : "NO — DETERMINISM BUG");

  // ---- Observability overhead ----------------------------------------------
  //
  // The metrics registry rides the census hot path (per-thread shards,
  // one relaxed atomic add per probe), and the scaling loop above already
  // runs fully instrumented. Contract: that instrumentation costs at most
  // 3% of census wall-clock at 8 threads. Enabled and disabled runs
  // alternate round-by-round and each side keeps its best time, so
  // warm-up and scheduling noise cancels instead of biasing one side.
  bench::print_subtitle("observability overhead (census, 8 threads)");
  constexpr int kOverheadRounds = 5;
  double best_instrumented = 0.0;
  double best_uninstrumented = 0.0;
  bool overhead_same_output = true;
  {
    concurrency::ThreadPool pool(8);
    Fingerprint baseline;
    for (int round = 0; round < kOverheadRounds; ++round) {
      for (const bool enabled : {false, true}) {
        obs::metrics().set_enabled(enabled);
        census::Greylist blacklist;
        census::FastPingConfig fastping;
        fastping.seed = config.seed;
        fastping.probe_rate_pps = config.probe_rate_pps;
        fastping.vp_availability = config.vp_availability;
        const auto start = Clock::now();
        const census::CensusOutput output = run_census(
            internet, vps, hitlist, blacklist, fastping,
            /*faults=*/nullptr, &pool);
        const double seconds = seconds_since(start);
        double& best = enabled ? best_instrumented : best_uninstrumented;
        if (best == 0.0 || seconds < best) best = seconds;
        Fingerprint print;
        print.probes = output.summary.probes_sent;
        print.replies = output.summary.echo_replies;
        print.responsive = output.data.responsive_targets(2);
        print.greylisted = blacklist.size();
        if (round == 0 && !enabled) {
          baseline = print;
        } else if (!(print == baseline)) {
          overhead_same_output = false;
        }
      }
    }
    obs::metrics().set_enabled(true);
    obs::metrics().reset();
  }
  const double overhead_pct =
      best_uninstrumented > 0.0
          ? (best_instrumented / best_uninstrumented - 1.0) * 100.0
          : 0.0;
  const bool overhead_ok =
      best_instrumented <= best_uninstrumented * 1.03 && overhead_same_output;
  std::printf("  %-24s %14.3f\n", "instrumented s", best_instrumented);
  std::printf("  %-24s %14.3f\n", "uninstrumented s", best_uninstrumented);
  std::printf("  %-24s %+13.2f%%  (budget 3%%: %s)\n", "overhead",
              overhead_pct, overhead_ok ? "ok" : "OVER — OBS REGRESSION");
  if (!overhead_same_output) {
    std::printf("  WARNING: disabling metrics changed census output\n");
  }

  // ---- Flight recorder overhead --------------------------------------------
  //
  // Full flight recorder riding along: journal recording on, a 50 ms
  // progress heartbeat ticking (journal + counter sampling, no sink),
  // versus the recorder fully off. Budget: journaling + heartbeat cost
  // at most 3% of census CPU time at 8 threads, and the semantic
  // journal text must be byte-identical round over round (the
  // determinism contract under load). The estimate is the *median of
  // per-round paired differences* on process CPU time: each round runs
  // off-then-on back to back so slow machine drift hits both sides, and
  // the median discards rounds where the container was throttled
  // mid-pair.
  bench::print_subtitle("flight recorder overhead (census, 8 threads)");
  std::vector<double> recorded_cpu;
  std::vector<double> unrecorded_cpu;
  bool journal_same_output = true;
  bool journal_deterministic = true;
  std::uint64_t journal_drops = 0;
  {
    concurrency::ThreadPool pool(8);
    Fingerprint baseline;
    std::string journal_reference;
    for (int round = 0; round < kOverheadRounds; ++round) {
      for (const bool recording : {false, true}) {
        obs::journal().reset();
        obs::journal().set_recording(recording);
        obs::counter_sampler().reset();
        if (recording) {
          obs::ProgressConfig progress_config;
          progress_config.journal = &obs::journal();
          progress_config.sampler = &obs::counter_sampler();
          auto tracker =
              std::make_shared<obs::ProgressTracker>(progress_config);
          pool.start_heartbeat(
              std::chrono::milliseconds(50),
              [tracker](std::size_t done, std::size_t total) {
                (void)tracker->tick(done, total);
              });
        }
        census::Greylist blacklist;
        census::FastPingConfig fastping;
        fastping.seed = config.seed;
        fastping.probe_rate_pps = config.probe_rate_pps;
        fastping.vp_availability = config.vp_availability;
        const double cpu_start = cpu_seconds();
        const census::CensusOutput output = run_census(
            internet, vps, hitlist, blacklist, fastping,
            /*faults=*/nullptr, &pool);
        const double cpu = cpu_seconds() - cpu_start;
        pool.stop_heartbeat();
        (recording ? recorded_cpu : unrecorded_cpu).push_back(cpu);
        Fingerprint print;
        print.probes = output.summary.probes_sent;
        print.replies = output.summary.echo_replies;
        print.responsive = output.data.responsive_targets(2);
        print.greylisted = blacklist.size();
        if (round == 0 && !recording) {
          baseline = print;
        } else if (!(print == baseline)) {
          journal_same_output = false;
        }
        if (recording) {
          journal_drops += obs::journal().events_dropped();
          const std::string text = obs::journal().semantic_text();
          if (journal_reference.empty()) {
            journal_reference = text;
          } else if (text != journal_reference) {
            journal_deterministic = false;
          }
        }
      }
    }
    obs::journal().set_recording(false);
    obs::journal().reset();
    obs::counter_sampler().reset();
    obs::metrics().reset();
  }
  std::vector<double> journal_pairs;
  for (std::size_t i = 0;
       i < recorded_cpu.size() && i < unrecorded_cpu.size(); ++i) {
    if (unrecorded_cpu[i] > 0.0) {
      journal_pairs.push_back(recorded_cpu[i] / unrecorded_cpu[i] - 1.0);
    }
  }
  const double journal_pct = median_of(journal_pairs) * 100.0;
  const bool journal_ok = journal_pct <= 3.0 && journal_same_output &&
                          journal_deterministic && journal_drops == 0;
  std::printf("  %-24s %14.3f\n", "recorded med cpu s",
              median_of(recorded_cpu));
  std::printf("  %-24s %14.3f\n", "unrecorded med cpu s",
              median_of(unrecorded_cpu));
  std::printf("  %-24s %+13.2f%%  (budget 3%%: %s)\n", "overhead",
              journal_pct, journal_ok ? "ok" : "OVER — OBS REGRESSION");
  std::printf("  %-24s %14s\n", "semantic text stable",
              journal_deterministic ? "yes" : "NO — DETERMINISM BUG");
  std::printf("  %-24s %14llu\n", "events dropped",
              static_cast<unsigned long long>(journal_drops));
  if (!journal_same_output) {
    std::printf("  WARNING: enabling the journal changed census output\n");
  }

  std::FILE* json = std::fopen("BENCH_parallel.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"parallel_scaling\",\n"
                 "  \"targets\": %zu,\n  \"vps\": %zu,\n"
                 "  \"hardware_threads\": %zu,\n"
                 "  \"scaling_valid\": %s,\n"
                 "  \"outputs_identical\": %s,\n"
                 "  \"obs_overhead_pct\": %.2f,\n"
                 "  \"obs_overhead_within_budget\": %s,\n"
                 "  \"journal_overhead_pct\": %.2f,\n"
                 "  \"journal_overhead_within_budget\": %s,\n"
                 "  \"journal_semantic_text_stable\": %s,\n"
                 "  \"journal_events_dropped\": %llu,\n  \"results\": [\n",
                 hitlist.size(), vps.size(),
                 concurrency::default_thread_count(),
                 bench::scaling_valid() ? "true" : "false",
                 identical ? "true" : "false", overhead_pct,
                 overhead_ok ? "true" : "false", journal_pct,
                 journal_ok ? "true" : "false",
                 journal_deterministic ? "true" : "false",
                 static_cast<unsigned long long>(journal_drops));
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const Sample& sample = samples[i];
      std::fprintf(json,
                   "    {\"phase\": \"%s\", \"threads\": %d, "
                   "\"seconds\": %.6f, \"speedup\": %.3f}%s\n",
                   sample.phase.c_str(), sample.threads, sample.cost.seconds,
                   sample.speedup, i + 1 < samples.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("  wrote BENCH_parallel.json\n");
  }

  json = std::fopen("BENCH_columnar.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"columnar\",\n"
                 "  \"targets\": %zu,\n  \"vps\": %zu,\n"
                 "  \"hardware_threads\": %zu,\n"
                 "  \"scaling_valid\": %s,\n"
                 "  \"rss_resets_per_phase\": %s,\n"
                 "  \"outputs_identical\": %s,\n  \"phases\": [\n",
                 hitlist.size(), vps.size(),
                 concurrency::default_thread_count(),
                 bench::scaling_valid() ? "true" : "false",
                 rss_resets ? "true" : "false",
                 identical ? "true" : "false");
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const Sample& sample = samples[i];
      std::fprintf(
          json,
          "    {\"phase\": \"%s\", \"threads\": %d, \"seconds\": %.6f, "
          "\"speedup\": %.3f, \"allocations\": %llu, \"alloc_mb\": %llu, "
          "\"peak_rss_kb\": %zu}%s\n",
          sample.phase.c_str(), sample.threads, sample.cost.seconds,
          sample.speedup, static_cast<unsigned long long>(sample.cost.allocs),
          static_cast<unsigned long long>(sample.cost.alloc_mb),
          sample.cost.peak_rss_kb, i + 1 < samples.size() ? "," : "");
    }
    std::fprintf(
        json,
        "  ],\n  \"layout_comparison\": {\n"
        "    \"workload\": \"assemble %zu-vp fragments x2 + combine_min\",\n"
        "    \"identical_result\": %s,\n"
        "    \"columnar\": {\"seconds\": %.6f, \"allocations\": %llu, "
        "\"alloc_mb\": %llu, \"peak_rss_kb\": %zu, "
        "\"container_footprint_kb\": %zu},\n"
        "    \"legacy\": {\"seconds\": %.6f, \"allocations\": %llu, "
        "\"alloc_mb\": %llu, \"peak_rss_kb\": %zu, "
        "\"container_footprint_kb\": %zu}\n  }\n}\n",
        vps.size(), same_result ? "true" : "false", columnar.seconds,
        static_cast<unsigned long long>(columnar.allocs),
        static_cast<unsigned long long>(columnar.alloc_mb),
        columnar.peak_rss_kb, columnar_footprint_kb, legacy.seconds,
        static_cast<unsigned long long>(legacy.allocs),
        static_cast<unsigned long long>(legacy.alloc_mb),
        legacy.peak_rss_kb, legacy_footprint_kb);
    std::fclose(json);
    std::printf("  wrote BENCH_columnar.json\n");
  }
  return identical && same_result && fewer_allocs && overhead_ok &&
                 journal_ok
             ? 0
             : 1;
}
