// Parallel scaling of the census + analysis engine.
//
// The paper's census probes 6.6M /24s from ~300 VPs in ~24h and analyses
// a census in under 3h; both hot loops here are embarrassingly parallel
// (per-VP walks, per-target iGreedy). This bench measures census and
// analysis wall-clock on the default BenchConfig world at 1/2/4/8
// threads, verifies the outputs are identical at every thread count (the
// engine's determinism contract), and writes the machine-readable
// trajectory to BENCH_parallel.json.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"

namespace {

using namespace anycast;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Sample {
  std::string phase;
  int threads = 0;
  double seconds = 0.0;
  double speedup = 1.0;
};

/// Fingerprint of one run's output, for the cross-thread-count identity
/// check. Any divergence in rows, summary, or analysis shows up here.
struct Fingerprint {
  std::uint64_t probes = 0;
  std::uint64_t replies = 0;
  std::size_t responsive = 0;
  std::size_t greylisted = 0;
  std::size_t anycast_ip24 = 0;
  std::size_t replicas = 0;

  bool operator==(const Fingerprint&) const = default;
};

}  // namespace

int main() {
  const bench::BenchConfig config;  // the default BenchConfig world
  bench::print_title(
      "Parallel scaling — census + analysis wall-clock vs threads");

  net::WorldConfig world_config;
  world_config.seed = config.seed;
  world_config.unicast_alive_slash24 = config.unicast_alive_slash24;
  world_config.unicast_silent_slash24 = config.unicast_silent_slash24;
  world_config.unicast_dead_slash24 = config.unicast_dead_slash24;
  const net::SimulatedInternet internet(world_config);
  const auto vps = net::make_planetlab(
      {.node_count = config.vp_count, .seed = config.seed ^ 0xF1E1D});
  const census::Hitlist hitlist =
      census::Hitlist::from_world(internet).without_dead();
  const analysis::CensusAnalyzer analyzer(vps, geo::world_index());
  std::printf("  world: %zu targets x %zu VPs (%zu cores available)\n",
              hitlist.size(), vps.size(),
              concurrency::default_thread_count());

  const int kThreadCounts[] = {1, 2, 4, 8};
  std::vector<Sample> samples;
  Fingerprint reference;
  bool identical = true;

  for (const int threads : kThreadCounts) {
    concurrency::ThreadPool pool(static_cast<std::size_t>(threads));

    // Census phase: one full pass, fresh blacklist so every thread count
    // does identical work.
    census::Greylist blacklist;
    census::FastPingConfig fastping;
    fastping.seed = config.seed;
    fastping.probe_rate_pps = config.probe_rate_pps;
    fastping.vp_availability = config.vp_availability;
    const auto census_start = Clock::now();
    const census::CensusOutput output =
        run_census(internet, vps, hitlist, blacklist, fastping,
                   /*faults=*/nullptr, &pool);
    const double census_s = seconds_since(census_start);

    // Analysis phase: detection sweep + iGreedy over the census rows.
    const auto analysis_start = Clock::now();
    const auto outcomes =
        analyzer.analyze(output.data, hitlist, /*min_vps=*/2, &pool);
    const double analysis_s = seconds_since(analysis_start);

    Fingerprint print;
    print.probes = output.summary.probes_sent;
    print.replies = output.summary.echo_replies;
    print.responsive = output.data.responsive_targets(2);
    print.greylisted = blacklist.size();
    print.anycast_ip24 = outcomes.size();
    for (const auto& outcome : outcomes) {
      print.replicas += outcome.result.replicas.size();
    }
    if (threads == kThreadCounts[0]) {
      reference = print;
    } else if (!(print == reference)) {
      identical = false;
    }

    samples.push_back({"census", threads, census_s, 1.0});
    samples.push_back({"analysis", threads, analysis_s, 1.0});
    samples.push_back({"total", threads, census_s + analysis_s, 1.0});
  }

  // Speedups against the 1-thread baseline of each phase.
  for (Sample& sample : samples) {
    for (const Sample& base : samples) {
      if (base.phase == sample.phase && base.threads == kThreadCounts[0]) {
        sample.speedup = sample.seconds > 0.0
                             ? base.seconds / sample.seconds
                             : 1.0;
      }
    }
  }

  bench::print_subtitle("wall-clock per phase");
  std::printf("  %-10s %8s %10s %9s\n", "phase", "threads", "seconds",
              "speedup");
  for (const Sample& sample : samples) {
    std::printf("  %-10s %8d %10.3f %8.2fx\n", sample.phase.c_str(),
                sample.threads, sample.seconds, sample.speedup);
  }
  std::printf("\n  outputs identical across thread counts: %s\n",
              identical ? "yes" : "NO — DETERMINISM BUG");

  std::FILE* json = std::fopen("BENCH_parallel.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"parallel_scaling\",\n"
                 "  \"targets\": %zu,\n  \"vps\": %zu,\n"
                 "  \"hardware_threads\": %zu,\n"
                 "  \"outputs_identical\": %s,\n  \"results\": [\n",
                 hitlist.size(), vps.size(),
                 concurrency::default_thread_count(),
                 identical ? "true" : "false");
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const Sample& sample = samples[i];
      std::fprintf(json,
                   "    {\"phase\": \"%s\", \"threads\": %d, "
                   "\"seconds\": %.6f, \"speedup\": %.3f}%s\n",
                   sample.phase.c_str(), sample.threads, sample.seconds,
                   sample.speedup, i + 1 < samples.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("  wrote BENCH_parallel.json\n");
  }
  return identical ? 0 : 1;
}
