// Continuous-census daemon economics: what does a watch round cost, and
// what does incremental re-analysis buy on the low-churn rounds the
// longitudinal campaign is made of?
//
// Ten rounds probe the same world with a fixed census seed; from round 2
// on, one deployment prefix toggles a replica site per round (the watch
// daemon's churn model), so each round dirties a handful of rows out of
// thousands. Every round is analyzed twice — a full detection + iGreedy
// sweep and the incremental splice over the dirty rows — and the bench
// asserts the two are element-identical before reporting the speedup.
// Results land in BENCH_daemon.json: per-round wall/CPU for the census
// and both analysis passes, dirty-row counts, and RSS across the rounds
// (the daemon must not accrete memory round over round).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <vector>

#include "common.hpp"
#include "anycast/analysis/incremental.hpp"
#include "anycast/rng/distributions.hpp"

namespace {

using namespace anycast;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double cpu_seconds() {
#if defined(__linux__) || defined(__APPLE__)
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

std::size_t current_rss_kb() {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0;
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof line, status) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      kb = static_cast<std::size_t>(std::strtoull(line + 6, nullptr, 10));
      break;
    }
  }
  std::fclose(status);
  return kb;
}

/// The watch daemon's churn model, replicated: toggle one replica site of
/// one prefix, drawn purely from (seed, round).
void apply_round_churn(net::SimulatedInternet& internet, std::uint64_t seed,
                       int round) {
  const auto draw = [&](std::uint64_t tag) {
    return rng::hash_uniform01(
        rng::hash_key(seed, static_cast<std::uint64_t>(round), tag));
  };
  const auto deployments = internet.deployments();
  const std::size_t start = static_cast<std::size_t>(
      draw(1) * static_cast<double>(deployments.size()));
  for (std::size_t i = 0; i < deployments.size(); ++i) {
    const std::size_t dep = (start + i) % deployments.size();
    if (deployments[dep].sites.size() < 2 ||
        deployments[dep].prefix_site_masks.empty()) {
      continue;
    }
    const std::size_t prefix = static_cast<std::size_t>(
        draw(2) *
        static_cast<double>(deployments[dep].prefix_site_masks.size()));
    const std::size_t site = static_cast<std::size_t>(
        draw(3) * static_cast<double>(deployments[dep].sites.size()));
    const std::uint64_t mask = deployments[dep].prefix_site_masks[prefix];
    internet.set_prefix_site_mask(dep, prefix,
                                  mask ^ (std::uint64_t{1} << site));
    return;
  }
}

bool same_outcomes(const std::vector<analysis::TargetOutcome>& a,
                   const std::vector<analysis::TargetOutcome>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].target_index != b[i].target_index ||
        a[i].slash24_index != b[i].slash24_index ||
        a[i].result.anycast != b[i].result.anycast ||
        a[i].result.replicas.size() != b[i].result.replicas.size()) {
      return false;
    }
  }
  return true;
}

struct RoundCost {
  int round = 0;
  double census_s = 0.0;
  double census_cpu_s = 0.0;
  double full_s = 0.0;
  double incremental_s = 0.0;  // 0 on round 1 (nothing to splice against)
  std::size_t dirty = 0;
  std::size_t anycast = 0;
  std::size_t rss_kb = 0;
};

}  // namespace

int main() {
  constexpr int kRounds = 10;
  constexpr std::uint64_t kChurnSeed = 77;

  net::WorldConfig world_config;
  world_config.seed = 2015;
  world_config.unicast_alive_slash24 = 6000;
  world_config.unicast_dead_slash24 = 2000;
  net::SimulatedInternet internet(world_config);
  const auto vps = net::make_planetlab({.node_count = 120, .seed = 7});
  const census::Hitlist hitlist =
      census::Hitlist::from_world(internet).without_dead();
  census::FastPingConfig fastping;
  fastping.seed = 90;  // fixed across rounds: static rows replay exactly
  concurrency::ThreadPool pool(0);
  const analysis::CensusAnalyzer analyzer(vps, geo::world_index());

  bench::print_title(
      "Continuous daemon rounds — census + incremental re-analysis cost");
  std::printf("  %zu targets, %zu VPs, %d rounds, 1 site toggle per round\n",
              hitlist.size(), vps.size(), kRounds);
  std::printf("  %-6s %10s %10s %10s %10s %8s %8s %10s\n", "round",
              "census s", "cpu s", "full s", "incr s", "dirty", "anycast",
              "rss MB");

  census::CensusMatrix prev;
  std::vector<analysis::TargetOutcome> prev_outcomes;
  std::vector<RoundCost> costs;
  bool identical = true;
  for (int round = 1; round <= kRounds; ++round) {
    if (round >= 2) apply_round_churn(internet, kChurnSeed, round);

    RoundCost cost;
    cost.round = round;
    census::Greylist blacklist;
    const double cpu0 = cpu_seconds();
    auto start = Clock::now();
    census::CensusMatrix data =
        run_census(internet, vps, hitlist, blacklist, fastping, nullptr,
                   &pool)
            .data;
    cost.census_s = seconds_since(start);
    cost.census_cpu_s = cpu_seconds() - cpu0;

    start = Clock::now();
    const auto full = analyzer.analyze(data, hitlist, 2, &pool);
    cost.full_s = seconds_since(start);
    cost.anycast = full.size();

    if (round >= 2) {
      start = Clock::now();
      auto incremental = analysis::incremental_analyze(
          analyzer, prev_outcomes, prev, data, hitlist, 2, &pool);
      cost.incremental_s = seconds_since(start);
      cost.dirty = incremental.dirty.size();
      identical = identical && same_outcomes(incremental.outcomes, full);
    }
    cost.rss_kb = current_rss_kb();
    std::printf("  %-6d %10.3f %10.3f %10.3f %10.3f %8zu %8zu %10.1f\n",
                round, cost.census_s, cost.census_cpu_s, cost.full_s,
                cost.incremental_s, cost.dirty, cost.anycast,
                static_cast<double>(cost.rss_kb) / 1024.0);
    costs.push_back(cost);

    prev = std::move(data);
    prev_outcomes = full;
  }

  double full_total = 0.0, incr_total = 0.0;
  for (const RoundCost& cost : costs) {
    if (cost.round >= 2) {
      full_total += cost.full_s;
      incr_total += cost.incremental_s;
    }
  }
  const double speedup = incr_total > 0.0 ? full_total / incr_total : 0.0;
  bench::print_rule();
  std::printf("  incremental vs full (rounds 2-%d): %.1fx  (%s)\n", kRounds,
              speedup,
              identical ? "outcomes element-identical"
                        : "OUTCOMES DIVERGED — INCREMENTAL BUG");
  const double rss_growth =
      static_cast<double>(costs.back().rss_kb) -
      static_cast<double>(costs[1].rss_kb);
  std::printf("  RSS drift rounds 2->%d: %+.1f MB\n", kRounds,
              rss_growth / 1024.0);

  std::FILE* json = std::fopen("BENCH_daemon.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"daemon_rounds\",\n"
                 "  \"targets\": %zu,\n  \"vps\": %zu,\n"
                 "  \"round_count\": %d,\n"
                 "  \"incremental_identical\": %s,\n"
                 "  \"incremental_speedup\": %.2f,\n  \"rounds\": [\n",
                 hitlist.size(), vps.size(), kRounds,
                 identical ? "true" : "false", speedup);
    for (std::size_t i = 0; i < costs.size(); ++i) {
      const RoundCost& cost = costs[i];
      std::fprintf(json,
                   "    {\"round\": %d, \"census_s\": %.6f, "
                   "\"census_cpu_s\": %.6f, \"full_analyze_s\": %.6f, "
                   "\"incremental_s\": %.6f, \"dirty\": %zu, "
                   "\"anycast\": %zu, \"rss_kb\": %zu}%s\n",
                   cost.round, cost.census_s, cost.census_cpu_s, cost.full_s,
                   cost.incremental_s, cost.dirty, cost.anycast, cost.rss_kb,
                   i + 1 < costs.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("  wrote BENCH_daemon.json\n");
  }
  return identical ? 0 : 1;
}
