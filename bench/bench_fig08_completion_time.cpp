// Fig. 8 — "CDF of per-vantage point completion time, over all censuses".
//
// Probing 6.6M targets at ~1,000 pps takes just under two hours on an idle
// node; host load stretches the tail: ~40% of PL nodes finish within that
// window and 95% within 5 hours, with stragglers out to ~16 h. The bench
// extrapolates each VP's measured duration to the paper's hitlist size.
#include "anycast/analysis/stats.hpp"
#include "common.hpp"

int main() {
  using namespace anycast;
  using namespace anycast::bench;

  BenchConfig config;
  config.census_count = 2;
  config.vp_count = 300;
  const BenchWorld world(config);

  std::vector<double> hours;
  const double scale = world.hitlist_scale();
  for (const census::CensusSummary& summary : world.summaries) {
    for (const double h : summary.vp_duration_hours) {
      hours.push_back(h * scale);
    }
  }
  const analysis::Empirical dist(hours);

  print_title("Fig. 8 — per-VP census completion time (extrapolated to "
              "6.6M targets)");
  std::printf("  %zu VP-census samples; probing rate %.0f pps\n",
              dist.size(), config.probe_rate_pps);
  std::printf("\n  %-38s %16s %16s\n", "point", "paper", "measured");
  print_compare("fraction done within ~2 h", "~40%",
                fmt_pct(dist.cdf(2.0), 0));
  print_compare("fraction done within 5 h", "~95%",
                fmt_pct(dist.cdf(5.0), 0));
  print_compare("slowest VP", "~16 h", fmt(dist.max(), 1) + " h");

  print_subtitle("CDF samples (completion hours)");
  std::printf("  %8s %10s\n", "quantile", "hours");
  for (const double q : {0.10, 0.25, 0.40, 0.50, 0.75, 0.90, 0.95, 0.99,
                         1.00}) {
    std::printf("  %7.0f%% %10.2f\n", q * 100.0, dist.quantile(q));
  }
  const bool shape_ok = dist.cdf(2.0) > 0.2 && dist.cdf(2.0) < 0.65 &&
                        dist.cdf(5.0) > 0.85;
  return shape_ok ? 0 : 1;
}
