// Fig. 16 — "Breakdown of software running on anycast replicas": ~30
// fingerprinted packages grouped DNS / Web / Mail / Other; ISC BIND
// dominates DNS (with NSD on root servers and Apple for resilience
// diversity), nginx leads the web group, Google's Gmail daemons are the
// mail group. Fingerprint popularity correlates only weakly with the
// unicast web-server ranking (Spearman ~0.38).
#include <map>
#include <set>

#include "anycast/analysis/stats.hpp"
#include "anycast/portscan/scanner.hpp"
#include "common.hpp"

int main() {
  using namespace anycast;
  using namespace anycast::bench;

  net::WorldConfig world_config;
  world_config.seed = 2015;
  world_config.unicast_alive_slash24 = 100;
  world_config.unicast_dead_slash24 = 100;
  const net::SimulatedInternet internet(world_config);
  const portscan::PortScanner scanner(internet);
  const auto scans = scanner.scan_all(internet.deployments().subspan(0, 100));

  // software -> set of ASes running it.
  std::map<std::string_view, std::set<std::string_view>> by_software;
  std::size_t dns53_total = 0;
  std::size_t dns53_unknown = 0;
  for (const portscan::DeploymentScan& scan : scans) {
    for (const portscan::PortHit& hit : scan.open_ports) {
      if (hit.port == 53) {
        ++dns53_total;
        if (hit.software.empty()) ++dns53_unknown;
      }
      if (!hit.software.empty()) {
        by_software[hit.software].insert(scan.deployment->whois_name);
      }
    }
  }

  print_title("Fig. 16 — software on anycast replicas (" +
              std::to_string(by_software.size()) + " packages)");
  const char* kClassNames[] = {"DNS", "Web", "Mail", "Other"};
  std::map<net::SoftwareClass, std::vector<std::string>> grouped;
  for (const auto& [software, ases] : by_software) {
    grouped[net::classify_software(software)].push_back(
        std::string(software) + " (" + std::to_string(ases.size()) + ")");
  }
  for (const auto& [cls, entries] : grouped) {
    print_subtitle(kClassNames[static_cast<int>(cls)]);
    for (const std::string& entry : entries) {
      std::printf("  %s\n", entry.c_str());
    }
  }

  print_subtitle("checks");
  std::printf("  %-38s %16s %16s\n", "metric", "paper", "measured");
  print_compare("distinct software packages", "30",
                fmt_int(by_software.size()));
  print_compare("port-53 ASes w/o identified software", "44 of 67",
                fmt_int(dns53_unknown) + " of " + fmt_int(dns53_total));
  const std::size_t bind =
      by_software.count("ISC BIND") ? by_software["ISC BIND"].size() : 0;
  const std::size_t nsd = by_software.count("NLnet Labs NSD")
                              ? by_software["NLnet Labs NSD"].size()
                              : 0;
  const std::size_t nginx =
      by_software.count("nginx") ? by_software["nginx"].size() : 0;
  print_compare("ISC BIND ASes (top DNS daemon)", "most", fmt_int(bind));
  print_compare("NLnet Labs NSD ASes", "3 (Apple,K,L-root)", fmt_int(nsd));
  print_compare("nginx ASes (top web server)", "7", fmt_int(nginx));

  // Sec. 4.3: the anycast web-server popularity ranking correlates only
  // weakly with the unicast world's (w3techs Alexa-10M ranking circa the
  // paper): Spearman ~0.38 — anycast CDNs favour different daemons.
  print_subtitle("anycast vs unicast web-server popularity");
  const std::pair<std::string_view, double> unicast_rank[] = {
      {"Apache httpd", 1.0}, {"nginx", 2.0},        {"Microsoft IIS", 3.0},
      {"Google httpd", 4.0}, {"Apache Tomcat", 5.0}, {"lighttpd", 6.0},
      {"Varnish", 7.0},      {"thttpd", 8.0},       {"cPanel httpd", 9.0},
  };
  std::vector<double> unicast_scores;
  std::vector<double> anycast_scores;
  for (const auto& [software, rank] : unicast_rank) {
    const auto it = by_software.find(software);
    unicast_scores.push_back(-rank);  // higher = more popular
    anycast_scores.push_back(
        it == by_software.end() ? 0.0
                                : static_cast<double>(it->second.size()));
  }
  const double rho = analysis::spearman(unicast_scores, anycast_scores);
  print_compare("Spearman(anycast, unicast ranks)", "0.38", fmt(rho, 2));

  const bool sane = by_software.size() >= 25 && by_software.size() <= 33 &&
                    bind >= nsd && nginx >= 4 && dns53_unknown * 2 >
                                                     dns53_total &&
                    rho < 0.9;
  return sane ? 0 : 1;
}
