// Fig. 9 — "Bird's eye view of Top-100 anycast ASes (ranked according to
// geographical footprint)": per-AS replicas (mean ± stddev across its
// /24s), /24 footprint, open TCP ports, CAIDA and Alexa standing, and
// business category; plus the no-correlation observation of Sec. 4.2
// (Pearson ~0.35 between geographic and /24 footprints).
#include <algorithm>

#include "anycast/analysis/stats.hpp"
#include "anycast/portscan/scanner.hpp"
#include "common.hpp"

int main() {
  using namespace anycast;
  using namespace anycast::bench;

  const BenchWorld world{};
  const analysis::CensusReport report = analyze_combined(world);

  // Portscan the detected top ASes for the open-port column.
  const portscan::PortScanner scanner(world.internet);

  print_title("Fig. 9 — top anycast ASes by measured geographic footprint");
  std::printf("  %-4s %-16s %-9s %12s %6s %7s %7s %7s\n", "#", "AS (WHOIS)",
              "category", "replicas", "IP/24", "ports", "CAIDA", "Alexa");

  const auto ases = report.ases();
  const std::size_t rows = std::min<std::size_t>(100, ases.size());
  std::vector<double> geo_footprint;
  std::vector<double> ip24_footprint;
  for (std::size_t i = 0; i < rows; ++i) {
    const analysis::AsReport& as_report = ases[i];
    const net::Deployment& deployment = *as_report.deployment;
    const portscan::DeploymentScan scan = scanner.scan(deployment);
    if (i < 40) {  // print the head of the ranking; the tail is uniform
      std::printf("  %-4zu %-16.16s %-9s %6.1f±%-5.1f %6zu %7zu %7s %7s\n",
                  i + 1, deployment.whois_name.c_str(),
                  std::string(net::to_string(deployment.category)).c_str(),
                  as_report.mean_replicas, as_report.stddev_replicas,
                  as_report.detected_ip24, scan.open_ports.size(),
                  deployment.caida_rank > 0
                      ? std::to_string(deployment.caida_rank).c_str()
                      : "-",
                  deployment.alexa_sites > 0
                      ? std::to_string(deployment.alexa_sites).c_str()
                      : "-");
    }
    geo_footprint.push_back(as_report.mean_replicas);
    ip24_footprint.push_back(static_cast<double>(as_report.detected_ip24));
  }
  std::printf("  ... (%zu ASes total)\n", ases.size());

  print_subtitle("diversity: metric (de)correlation, Sec. 4.2");
  const double correlation =
      analysis::pearson(geo_footprint, ip24_footprint);
  print_compare("Pearson(geo footprint, /24 footprint)", "0.35",
                fmt(correlation, 2));

  // >= 25 ASes with >= 10 globally distributed replicas (Sec. 4.2).
  std::size_t big = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    if (ases[i].max_replicas >= 10) ++big;
  }
  print_compare("ASes with >=10 replicas", "25", std::to_string(big));
  const bool sane = correlation < 0.7 && big >= 10;
  return sane ? 0 : 1;
}
