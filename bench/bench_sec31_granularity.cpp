// Sec. 3.1 — census targets: granularity and coverage validation.
//
// Two claims are checked: (a) any alive IP of a /24 is equivalent for
// anycast detection — the paper spot-verifies this on an EdgeCast /24; we
// probe all 256 hosts of one and confirm every one maps to the same
// catchment; (b) the hitlist covers ~all routed /24s (paper: 10,615,563 of
// 10,616,435 — 99.99%), which we verify against the simulated route dump,
// including prefixes shorter than /24 that must be split.
#include <set>

#include "anycast/ipaddr/aggregate.hpp"
#include "anycast/rng/random.hpp"
#include "common.hpp"

int main() {
  using namespace anycast;
  using namespace anycast::bench;

  net::WorldConfig world_config;
  world_config.seed = 2015;
  world_config.unicast_alive_slash24 = 5000;
  world_config.unicast_silent_slash24 = 5000;
  world_config.unicast_dead_slash24 = 5000;
  const net::SimulatedInternet internet(world_config);
  const auto vps = net::make_planetlab({.node_count = 40, .seed = 31});

  print_title("Sec. 3.1 — /24 granularity and hitlist coverage");

  // (a) all 256 addresses of an EdgeCast /24 behave identically.
  const net::Deployment* edgecast = internet.deployment_by_name("EDGECAST,US");
  rng::Xoshiro256 gen(1);
  bool equivalent = true;
  for (const net::VantagePoint& vp : vps) {
    std::set<int> catchment_signatures;
    for (int host = 0; host < 256; ++host) {
      const auto addr = ipaddr::IPv4Address(
          edgecast->prefixes[0].network().value() |
          static_cast<std::uint32_t>(host));
      const net::TargetInfo* info = internet.target_for(addr);
      if (info == nullptr || info->kind != net::TargetInfo::Kind::kAnycast) {
        equivalent = false;
        continue;
      }
      // Deterministic routing: every host byte lands on one site per VP.
      const net::ReplicaSite* site = internet.catchment(
          vp, static_cast<std::size_t>(info->deployment_index),
          static_cast<std::size_t>(info->prefix_index));
      catchment_signatures.insert(
          static_cast<int>(site - edgecast->sites.data()));
    }
    if (catchment_signatures.size() != 1) equivalent = false;
  }
  print_subtitle("(a) per-/24 equivalence (EdgeCast spot check)");
  print_compare("all 256 hosts equivalent per VP", "yes (spot verified)",
                equivalent ? "yes" : "NO");

  // (b) hitlist coverage of routed /24 space.
  const census::Hitlist hitlist = census::Hitlist::from_world(internet);
  std::set<std::uint32_t> hitlist_slash24;
  for (const census::HitlistEntry& entry : hitlist.entries()) {
    hitlist_slash24.insert(entry.representative.slash24_index());
  }
  const std::uint64_t routed = internet.route_table().covered_slash24_count();
  std::uint64_t covered = 0;
  // Walk the route dump, split announced prefixes into /24s (the paper's
  // procedure) and look each one up in the hitlist.
  std::set<std::uint32_t> routed_slash24;
  for (const net::TargetInfo& info : internet.targets()) {
    routed_slash24.insert(info.slash24_index);
  }
  for (const std::uint32_t index : routed_slash24) {
    if (hitlist_slash24.contains(index)) ++covered;
  }
  print_subtitle("(b) hitlist coverage of routed /24s");
  print_compare("routed /24 (route-table, merged)", "10,616,435",
                fmt_int(routed));
  print_compare("with a hitlist representative", "10,615,563 (99.99%)",
                fmt_int(covered) + " (" +
                    fmt_pct(static_cast<double>(covered) /
                            static_cast<double>(routed_slash24.size()), 2) +
                    ")");
  return equivalent && covered == routed_slash24.size() ? 0 : 1;
}
