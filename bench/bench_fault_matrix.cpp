// Robustness — census recall under injected faults, and checkpoint
// salvage (Sec. 3.5's operational reality, made measurable).
//
// Part 1 sweeps a fault matrix: crash/outage/storm/straggler rates rise
// together from 0% to 50% of VPs while the runner's defences (bounded
// retries, straggler deadline, quarantine) stay fixed. The shape to check
// is *graceful* degradation: detection recall (relative to the fault-free
// census) falls monotonically and without a cliff, because crashed and
// cut-off VPs keep their partial rows and retries win back outage losses.
//
// Part 2 damages checkpoint files the way real uploads break — truncation
// and bit rot — and shows collation salvaging the valid prefixes instead
// of discarding whole files.
#include <filesystem>
#include <fstream>
#include <vector>

#include "anycast/census/resume.hpp"
#include "anycast/census/storage.hpp"
#include "anycast/net/fault.hpp"
#include "common.hpp"

namespace {

namespace fs = std::filesystem;
using namespace anycast;

std::size_t detected_anycast(const census::CensusMatrix& data,
                             const census::Hitlist& hitlist,
                             std::span<const net::VantagePoint> vps) {
  const analysis::CensusAnalyzer analyzer(vps, geo::world_index());
  return analyzer.analyze(data, hitlist).size();
}

}  // namespace

int main() {
  using namespace anycast::bench;

  net::WorldConfig world_config;
  world_config.seed = 2015;
  world_config.unicast_alive_slash24 = 2500;
  world_config.unicast_silent_slash24 = 2500;
  world_config.unicast_dead_slash24 = 2500;
  const net::SimulatedInternet internet(world_config);
  const census::Hitlist hitlist =
      census::Hitlist::from_world(internet).without_dead();
  const auto vps = net::make_planetlab({.node_count = 80, .seed = 9});

  census::FastPingConfig fastping;
  fastping.seed = 1;
  fastping.retry_max_attempts = 2;
  fastping.quarantine_drop_rate = 0.9;
  fastping.vp_deadline_hours =
      3.0 * static_cast<double>(hitlist.size()) / fastping.probe_rate_pps /
      3600.0;

  print_title("Robustness — recall under the fault matrix");
  std::printf("  %zu VPs x %zu targets; retries=2, deadline=3x healthy "
              "walk, quarantine at 90%% drop\n\n",
              vps.size(), hitlist.size());
  std::printf("  %7s %6s %6s %6s %6s %6s %12s %8s\n", "faults", "done",
              "crash", "cut", "quar", "skip", "anycast /24", "recall");

  double baseline = 0.0;
  double previous_recall = 1.0;
  bool monotone = true;
  double worst_step = 0.0;
  double final_recall = 1.0;
  for (const double rate : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    net::FaultSpec spec;
    spec.crash_rate = rate;
    spec.outage_rate = rate;
    spec.storm_rate = rate;
    spec.straggler_rate = rate;
    const net::FaultPlan plan(spec);

    census::Greylist blacklist;
    const census::CensusOutput output =
        run_census(internet, vps, hitlist, blacklist, fastping,
                   rate > 0.0 ? &plan : nullptr);
    const std::size_t detected =
        detected_anycast(output.data, hitlist, vps);
    if (baseline == 0.0) baseline = static_cast<double>(detected);
    const double recall = static_cast<double>(detected) / baseline;

    using census::VpOutcome;
    const census::CensusSummary& s = output.summary;
    std::printf("  %6.0f%% %6zu %6zu %6zu %6zu %6zu %12zu %7.0f%%\n",
                rate * 100.0, s.outcome_count(VpOutcome::kCompleted),
                s.outcome_count(VpOutcome::kCrashed),
                s.outcome_count(VpOutcome::kCutOff),
                s.outcome_count(VpOutcome::kQuarantined),
                s.outcome_count(VpOutcome::kSkipped), detected,
                recall * 100.0);

    // Graceful = monotone within noise, and no single step falls off a
    // cliff. 5% slack absorbs detection jitter near the threshold.
    if (recall > previous_recall + 0.05) monotone = false;
    worst_step = std::max(worst_step, previous_recall - recall);
    previous_recall = recall;
    final_recall = recall;
  }
  std::printf(
      "\n  shape: recall degrades monotonically (worst single step "
      "-%.0f%%),\n  still %.0f%% with every fault hitting half the "
      "platform — partial rows\n  from crashed/cut-off VPs and retry "
      "passes keep the census useful.\n",
      worst_step * 100.0, final_recall * 100.0);

  // --- Part 2: corrupted-checkpoint salvage --------------------------------
  const fs::path dir =
      fs::temp_directory_path() /
      ("anycast_bench_fault_matrix_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  census::Greylist blacklist;
  census::FastPingConfig clean_config;
  clean_config.seed = 1;
  resume_census(internet, vps, hitlist, blacklist, clean_config, dir,
                /*census_id=*/7);

  std::vector<fs::path> files;
  for (const net::VantagePoint& vp : vps) {
    files.push_back(census::census_checkpoint_path(dir, 7, vp.id));
  }
  // Break every 8th upload: truncate most, bit-flip one, destroy one.
  std::size_t damaged = 0;
  for (std::size_t i = 0; i < files.size(); i += 8, ++damaged) {
    if (i == 8) {
      std::fstream file(files[i],
                        std::ios::in | std::ios::out | std::ios::binary);
      file.seekp(200);
      file.put('\x7F');
    } else if (i == 16) {
      std::ofstream(files[i], std::ios::binary) << "lost to the void";
    } else {
      fs::resize_file(files[i], fs::file_size(files[i]) / 3);
    }
  }

  census::CollateStats salvage_stats;
  const census::CensusMatrix salvaged =
      census::collate_census_files(files, hitlist.size(), &salvage_stats);
  std::size_t strict_skipped = 0;
  const census::CensusMatrix strict =
      census::collate_census_files(files, hitlist.size(), &strict_skipped);

  print_subtitle("corrupted-checkpoint salvage");
  std::printf("  damaged %zu of %zu uploads (truncated, bit-flipped, "
              "destroyed)\n",
              damaged, files.size());
  std::printf("  strict collation:  %zu files dropped whole\n",
              strict_skipped);
  std::printf("  salvage collation: %zu intact, %zu salvaged, %zu "
              "skipped; %s rows kept\n",
              salvage_stats.files_ok, salvage_stats.files_salvaged,
              salvage_stats.files_skipped,
              fmt_int(salvage_stats.observations).c_str());
  const std::size_t strict_detected = detected_anycast(strict, hitlist, vps);
  const std::size_t salvage_detected =
      detected_anycast(salvaged, hitlist, vps);
  std::printf("  anycast /24 detected: %zu strict vs %zu salvaged "
              "(baseline %.0f)\n",
              strict_detected, salvage_detected, baseline);
  fs::remove_all(dir);

  const bool salvage_helps = salvage_detected >= strict_detected &&
                             salvage_stats.files_salvaged > 0;
  return (monotone && final_recall > 0.3 && worst_step < 0.5 &&
          salvage_helps)
             ? 0
             : 1;
}
