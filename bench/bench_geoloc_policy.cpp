// Ablation — geolocation policy (Sec. 2.1 / 3.4).
//
// The paper's classifier picks the most populated city in each MIS disk
// (population alone gives ~75% city-level accuracy). This bench compares
// that policy against pure proximity (nearest city to the disk centre) and
// no side channel at all (keep disk centres), on the CloudFlare ground
// truth.
#include "anycast/analysis/validation.hpp"
#include "common.hpp"

namespace {

using namespace anycast;
using namespace anycast::bench;

analysis::ValidationMetrics run_policy(const BenchWorld& world,
                                       core::CityPolicy policy) {
  core::Options options;
  options.city_policy = policy;
  const analysis::CensusAnalyzer analyzer(world.vps, geo::world_index(),
                                          options);
  const analysis::CensusReport report(
      world.internet, analyzer.analyze(world.combined, world.hitlist));
  const net::Deployment* cloudflare =
      world.internet.deployment_by_name("CLOUDFLARENET,US");
  return validate_deployment(world.internet, world.vps, *cloudflare,
                             report.prefixes());
}

}  // namespace

int main() {
  BenchConfig config;
  config.census_count = 2;
  config.unicast_alive_slash24 = 2000;
  config.unicast_silent_slash24 = 2000;
  config.unicast_dead_slash24 = 2000;
  const BenchWorld world(config);

  print_title("Ablation — city-classification policy (CloudFlare GT)");
  std::printf("  %-22s %8s %12s %16s\n", "policy", "TPR", "median err",
              "replicas eval");

  const std::pair<const char*, core::CityPolicy> policies[] = {
      {"largest-population", core::CityPolicy::kLargestPopulation},
      {"nearest-to-center", core::CityPolicy::kNearestToCenter},
      {"none (disk centres)", core::CityPolicy::kNone},
  };
  double population_tpr = 0.0;
  for (const auto& [label, policy] : policies) {
    const analysis::ValidationMetrics metrics = run_policy(world, policy);
    if (policy == core::CityPolicy::kLargestPopulation) {
      population_tpr = metrics.tpr;
    }
    std::printf("  %-22s %7.0f%% %9.0f km %16zu\n", label,
                metrics.tpr * 100.0, metrics.median_error_km,
                metrics.evaluated_replicas);
  }
  std::printf(
      "\n  paper: population bias alone discriminates ~75%% of cases; with\n"
      "  no side channel there is no city classification at all (TPR 0),\n"
      "  which is why the MLE classifier is load-bearing.\n");
  return population_tpr > 0.45 ? 0 : 1;
}
