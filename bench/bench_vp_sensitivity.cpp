// Ablation — recall vs platform size (Sec. 2.1 / 3.2).
//
// Related DNS-only work achieves ~90% replica recall with O(10^4..10^5)
// vantage points on O(1) targets; the census trades completeness for scale
// with O(10^2) VPs. This bench sweeps the platform size and reports the
// detected anycast /24s and mean replicas per /24 at each size — the
// quantitative form of "our footprint estimates are conservative".
#include "common.hpp"

int main() {
  using namespace anycast;
  using namespace anycast::bench;

  net::WorldConfig world_config;
  world_config.seed = 2015;
  world_config.unicast_alive_slash24 = 3000;
  world_config.unicast_silent_slash24 = 3000;
  world_config.unicast_dead_slash24 = 3000;
  const net::SimulatedInternet internet(world_config);
  const census::Hitlist hitlist =
      census::Hitlist::from_world(internet).without_dead();

  print_title("Ablation — detection/enumeration recall vs platform size");
  std::printf("  %8s %14s %18s %14s\n", "VPs", "anycast /24",
              "mean replicas//24", "total replicas");

  std::size_t previous_prefixes = 0;
  bool monotone = true;
  for (const int vp_count : {25, 50, 100, 200, 300, 600}) {
    const auto vps = net::make_planetlab(
        {.node_count = vp_count, .seed = 9});
    census::Greylist blacklist;
    census::FastPingConfig fastping;
    fastping.seed = 1;
    const auto output =
        run_census(internet, vps, hitlist, blacklist, fastping);
    const analysis::CensusAnalyzer analyzer(vps, geo::world_index());
    const auto outcomes = analyzer.analyze(output.data, hitlist);
    std::uint64_t replicas = 0;
    for (const auto& outcome : outcomes) {
      replicas += outcome.result.replicas.size();
    }
    std::printf("  %8d %14zu %18.2f %14s\n", vp_count, outcomes.size(),
                outcomes.empty()
                    ? 0.0
                    : static_cast<double>(replicas) /
                          static_cast<double>(outcomes.size()),
                fmt_int(replicas).c_str());
    if (outcomes.size() + 20 < previous_prefixes) monotone = false;
    previous_prefixes = outcomes.size();
  }
  std::printf(
      "\n  shape: both detection and enumeration grow with platform size\n"
      "  and saturate slowly — the O(10^2)-VP census is a conservative\n"
      "  lower bound on the anycast footprint (Sec. 4.1).\n");
  return monotone ? 0 : 1;
}
