// Fig. 5 — "Microsoft deployment as seen from PlanetLab (21 replicas) vs
// RIPE (54 replicas)": PlanetLab results are a subset of RIPE results.
//
// The bench probes one Microsoft anycast /24 from a PlanetLab-like platform
// (300 VPs) and a RIPE-like platform (3x larger, embedding the PL VPs),
// runs iGreedy on both measurement sets, and checks the subset property.
#include <algorithm>
#include <set>

#include "anycast/core/igreedy.hpp"
#include "anycast/rng/random.hpp"
#include "common.hpp"

namespace {

using namespace anycast;

std::vector<core::Measurement> probe_target(
    const net::SimulatedInternet& internet,
    std::span<const net::VantagePoint> vps, ipaddr::IPv4Address target,
    std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  std::vector<core::Measurement> measurements;
  for (const net::VantagePoint& vp : vps) {
    double best = -1.0;
    for (int k = 0; k < 3; ++k) {  // min-of-3, like combining censuses
      const net::ProbeReply reply =
          internet.probe(vp, target, net::Protocol::kIcmpEcho, gen);
      if (reply.kind == net::ReplyKind::kEchoReply &&
          (best < 0.0 || reply.rtt_ms < best)) {
        best = reply.rtt_ms;
      }
    }
    if (best > 0.0) {
      measurements.push_back(
          core::Measurement{vp.id, vp.believed_location, best});
    }
  }
  return measurements;
}

std::set<std::string> replica_cities(const core::Result& result) {
  std::set<std::string> cities;
  for (const core::Replica& replica : result.replicas) {
    if (replica.city != nullptr) cities.insert(replica.city->display());
  }
  return cities;
}

}  // namespace

int main() {
  using namespace anycast::bench;

  net::WorldConfig world_config;
  world_config.seed = 2015;
  world_config.unicast_alive_slash24 = 100;  // only the target matters here
  world_config.unicast_dead_slash24 = 100;
  const net::SimulatedInternet internet(world_config);

  const net::Deployment* microsoft =
      internet.deployment_by_name("MICROSOFT,US");
  const auto target =
      ipaddr::IPv4Address(microsoft->prefixes[0].network().value() | 1);

  const auto planetlab = net::make_planetlab({.node_count = 300, .seed = 9});
  const auto ripe = net::make_ripe_atlas({.node_count = 1500, .seed = 9});

  const core::IGreedy igreedy(geo::world_index());
  const core::Result pl_result =
      igreedy.analyze(probe_target(internet, planetlab, target, 1));
  const core::Result ripe_result =
      igreedy.analyze(probe_target(internet, ripe, target, 2));

  const auto pl_cities = replica_cities(pl_result);
  const auto ripe_cities = replica_cities(ripe_result);
  std::size_t common = 0;
  for (const std::string& city : pl_cities) {
    if (ripe_cities.contains(city)) ++common;
  }

  print_title("Fig. 5 — Microsoft deployment: PlanetLab vs RIPE recall");
  std::printf("  deployment: %s, %zu true sites; target %s\n",
              microsoft->whois_name.c_str(), microsoft->sites.size(),
              target.to_string().c_str());
  std::printf("\n  %-38s %16s %16s\n", "metric", "paper", "measured");
  print_compare("replicas from PlanetLab", "21",
                std::to_string(pl_result.replicas.size()));
  print_compare("replicas from RIPE", "54",
                std::to_string(ripe_result.replicas.size()));
  print_compare("PL cities also found by RIPE", "all (subset)",
                std::to_string(common) + "/" +
                    std::to_string(pl_cities.size()));

  print_subtitle("replica cities (white = both, black = RIPE-only)");
  for (const std::string& city : ripe_cities) {
    std::printf("  %-28s %s\n", city.c_str(),
                pl_cities.contains(city) ? "white (PL+RIPE)"
                                         : "black (RIPE only)");
  }
  // Shape check for the harness: RIPE must see at least as much as PL.
  return ripe_result.replicas.size() >= pl_result.replicas.size() ? 0 : 1;
}
