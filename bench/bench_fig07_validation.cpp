// Fig. 7 — "Validation with CloudFlare and EdgeCast ASes": per-/24
// true-positive rate of the city classification against ground truth,
// GT/PAI coverage, and the median error of misclassifications.
//
// Paper: CF TPR 77%, median error 434 km, GT/PAI fairly high; EC TPR 65%,
// median error 287 km, GT/PAI fairly low. In the simulator the GT is the
// set of sites reachable from the platform's catchments and the PAI is the
// full advertised site list.
#include "anycast/analysis/validation.hpp"
#include "common.hpp"

int main() {
  using namespace anycast;
  using namespace anycast::bench;

  BenchConfig config;
  config.census_count = 2;
  config.unicast_alive_slash24 = 4000;  // validation only needs anycast
  config.unicast_silent_slash24 = 4000;
  config.unicast_dead_slash24 = 4000;
  const BenchWorld world(config);
  const analysis::CensusReport report = analyze_combined(world);

  print_title("Fig. 7 — validation against per-deployment ground truth");
  std::printf("  %-18s %22s %22s %22s\n", "AS", "GT/PAI (paper/meas)",
              "TPR (paper/meas)", "median err km (p/m)");

  struct Row {
    const char* whois;
    const char* paper_gt_pai;
    const char* paper_tpr;
    const char* paper_error;
  };
  const Row rows[] = {
      {"CLOUDFLARENET,US", "high (~0.8)", "0.77", "434"},
      {"EDGECAST,US", "low (~0.4)", "0.65", "287"},
  };

  bool sane = true;
  for (const Row& row : rows) {
    const net::Deployment* deployment =
        world.internet.deployment_by_name(row.whois);
    const analysis::ValidationMetrics metrics = validate_deployment(
        world.internet, world.vps, *deployment, report.prefixes());
    std::printf("  %-18s %10s / %-9s %10s / %-9s %10s / %-9s\n", row.whois,
                row.paper_gt_pai,
                (fmt(metrics.gt_over_pai, 2) + "±" +
                 fmt(metrics.gt_over_pai_stddev, 2))
                    .c_str(),
                row.paper_tpr,
                (fmt(metrics.tpr, 2) + "±" + fmt(metrics.tpr_stddev, 2))
                    .c_str(),
                row.paper_error, fmt(metrics.median_error_km, 0).c_str());
    sane = sane && metrics.tpr > 0.4 && metrics.tpr <= 1.0 &&
           metrics.evaluated_prefixes > 0;
  }
  std::printf(
      "\n  shape: classification agrees at city level for most /24s; the\n"
      "  misclassified remainder lands a few hundred km away (population\n"
      "  bias picks a neighbouring metropolis, Sec. 3.4).\n");
  return sane ? 0 : 1;
}
