// Fig. 12 — "CDF of geographically distinct replicas per IP/24
// (individual censuses and overall)".
//
// Individual censuses produce nearly overlapping CDFs; the min-RTT
// combination dominates them (better recall) and detects ~200 more
// anycast /24s than an average single census.
#include "anycast/analysis/stats.hpp"
#include "common.hpp"

int main() {
  using namespace anycast;
  using namespace anycast::bench;

  const BenchWorld world{};

  struct Series {
    std::string label;
    std::size_t anycast_ip24 = 0;
    std::vector<double> replicas;
  };
  std::vector<Series> series;
  for (std::size_t c = 0; c < world.censuses.size(); ++c) {
    Series s;
    s.label = "census " + std::to_string(c + 1) + " (" +
              std::to_string(world.summaries[c].active_vps) + " VPs)";
    const auto outcomes = analyze_data(world, world.censuses[c]);
    s.anycast_ip24 = outcomes.size();
    for (const auto& outcome : outcomes) {
      s.replicas.push_back(
          static_cast<double>(outcome.result.replicas.size()));
    }
    series.push_back(std::move(s));
  }
  Series combined;
  combined.label = "combination";
  const auto combined_outcomes = analyze_data(world, world.combined);
  combined.anycast_ip24 = combined_outcomes.size();
  for (const auto& outcome : combined_outcomes) {
    combined.replicas.push_back(
        static_cast<double>(outcome.result.replicas.size()));
  }
  series.push_back(std::move(combined));

  print_title("Fig. 12 — CDF of replicas per anycast /24");
  std::printf("  %-22s %9s |", "series", "IP/24");
  for (const int x : {2, 5, 10, 15, 20, 25}) std::printf("  P(R<=%2d)", x);
  std::printf("\n");
  for (const Series& s : series) {
    const analysis::Empirical dist(s.replicas);
    std::printf("  %-22s %9zu |", s.label.c_str(), s.anycast_ip24);
    for (const int x : {2, 5, 10, 15, 20, 25}) {
      std::printf("  %7.2f", dist.cdf(x));
    }
    std::printf("\n");
  }

  print_subtitle("combination effect (Sec. 4.1)");
  double mean_single = 0.0;
  for (std::size_t c = 0; c + 1 < series.size(); ++c) {
    mean_single += static_cast<double>(series[c].anycast_ip24);
  }
  mean_single /= static_cast<double>(series.size() - 1);
  const double extra =
      static_cast<double>(series.back().anycast_ip24) - mean_single;
  print_compare("extra anycast /24 vs avg census", "~200", fmt(extra, 0));
  // Per-census curves overlap; combination dominates.
  bool sane = extra >= 0.0;
  for (std::size_t c = 0; c + 1 < series.size(); ++c) {
    sane = sane && series.back().anycast_ip24 >= series[c].anycast_ip24;
  }
  return sane ? 0 : 1;
}
