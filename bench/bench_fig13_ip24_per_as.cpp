// Fig. 13 — "Number of IPs/24 per AS": about half of anycast ASes announce
// exactly one /24; ~10% announce 10 or more; the named giants are
// CloudFlare (328), Google (102), EdgeCast (37), Prolexic (21), Apple (6),
// Twitter (3), Level3 (2), LinkedIn (1).
#include "anycast/analysis/stats.hpp"
#include "common.hpp"

int main() {
  using namespace anycast;
  using namespace anycast::bench;

  BenchConfig config;
  config.census_count = 2;
  const BenchWorld world(config);
  const analysis::CensusReport report = analyze_combined(world);

  const analysis::Empirical dist(report.ip24_per_as());

  print_title("Fig. 13 — detected anycast /24s per AS (" +
              std::to_string(dist.size()) + " ASes)");
  std::printf("  %-38s %16s %16s\n", "point", "paper", "measured");
  print_compare("ASes with exactly one /24", "~50%",
                fmt_pct(dist.cdf(1.0), 0));
  print_compare("ASes with >= 10 /24s", "~10%",
                fmt_pct(dist.ccdf(9.0), 0));

  print_subtitle("named deployments (detected vs announced)");
  struct Named {
    const char* whois;
    int paper;
  };
  const Named named[] = {
      {"CLOUDFLARENET,US", 328}, {"GOOGLE,US", 102}, {"EDGECAST,US", 37},
      {"PROLEXIC,US", 21},       {"APPLE-ENGINE", 6}, {"TWITTER-NETW", 3},
      {"LEVEL3,US", 2},          {"LINKEDIN,US", 1},
  };
  std::printf("  %-20s %10s %10s\n", "AS", "paper", "measured");
  bool sane = true;
  for (const Named& entry : named) {
    const analysis::AsReport* as_report = report.by_name(entry.whois);
    const std::size_t detected =
        as_report == nullptr ? 0 : as_report->detected_ip24;
    std::printf("  %-20s %10d %10zu\n", entry.whois, entry.paper, detected);
    sane = sane && detected <= static_cast<std::size_t>(entry.paper);
  }
  sane = sane && dist.cdf(1.0) > 0.3 && dist.cdf(1.0) < 0.7 &&
         dist.ccdf(9.0) > 0.04 && dist.ccdf(9.0) < 0.2;
  return sane ? 0 : 1;
}
