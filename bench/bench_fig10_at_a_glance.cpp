// Fig. 10 — "Anycast censuses results, at a glance".
//
//            IP/24   ASes  Cities  CC  Replicas
//   All      1,696    346      77  38    13,802
//   >=5 Rep    897    100      71  36    11,598
//   ∩CAIDA      19      8      30  18       138
//   ∩Alexa     242     15      45  29     4,038
//
// The bench runs the full 4-census pipeline and prints the same rows.
#include "common.hpp"

int main() {
  using namespace anycast;
  using namespace anycast::bench;

  const BenchWorld world{};
  const analysis::CensusReport report = analyze_combined(world);

  print_title("Fig. 10 — anycast censuses at a glance (4 censuses, " +
              std::to_string(world.vps.size()) + " VPs)");

  struct PaperRow {
    const char* label;
    int ip24, ases, cities, cc;
    int replicas;
  };
  const PaperRow paper[] = {
      {"All", 1696, 346, 77, 38, 13802},
      {">=5 Replicas", 897, 100, 71, 36, 11598},
      {"∩ CAIDA-100", 19, 8, 30, 18, 138},
      {"∩ Alexa-100k", 242, 15, 45, 29, 4038},
  };
  const analysis::GlanceRow measured[] = {
      report.glance_all(),
      report.glance_min_replicas(5),
      report.glance_caida_top100(),
      report.glance_alexa(),
  };

  std::printf("  %-14s | %6s %5s %6s %4s %9s | %6s %5s %6s %4s %9s\n",
              "", "IP/24", "ASes", "Cities", "CC", "Replicas", "IP/24",
              "ASes", "Cities", "CC", "Replicas");
  std::printf("  %-14s | %35s | %35s\n", "row", "paper", "measured");
  bool sane = true;
  for (std::size_t i = 0; i < std::size(paper); ++i) {
    std::printf("  %-14s | %6d %5d %6d %4d %9d | %6zu %5zu %6zu %4zu %9s\n",
                paper[i].label, paper[i].ip24, paper[i].ases,
                paper[i].cities, paper[i].cc, paper[i].replicas,
                measured[i].ip24, measured[i].ases, measured[i].cities,
                measured[i].countries,
                fmt_int(measured[i].replicas).c_str());
  }
  // Shape checks: nesting, magnitudes, small intersections.
  sane = sane && measured[0].ip24 >= measured[1].ip24;
  sane = sane && measured[0].ip24 > 1200 && measured[0].ip24 <= 1696;
  sane = sane && measured[0].ases > 250 && measured[0].ases <= 346;
  sane = sane && measured[2].ases <= 8 && measured[3].ases <= 15;

  print_subtitle("notes");
  std::printf(
      "  conservative by construction: low-VP regions lose replicas and the\n"
      "  MIS lower-bounds the count (Sec. 4.1). Mean footprint: %.1f\n"
      "  replicas per anycast /24 (paper ~8.1).\n",
      static_cast<double>(measured[0].replicas) /
          static_cast<double>(measured[0].ip24));
  return sane ? 0 : 1;
}
