// Baseline comparison (Sec. 2.2): iGreedy vs CHAOS-query enumeration
// (Fan et al. [25]) vs pure speed-of-light detection (Madory et al. [35]).
//
// CHAOS enumerates DNS deployments accurately (server ids are exact) but
// returns nothing for non-DNS anycast and never geolocates; SOL detection
// gives a bit, no counts; iGreedy is service-agnostic and geolocates, at
// the cost of conservative counts. The table makes the design-space
// trade-off of the paper's related-work discussion concrete.
#include "anycast/analysis/baselines.hpp"
#include "anycast/core/igreedy.hpp"
#include "anycast/rng/random.hpp"
#include "common.hpp"

namespace {

using namespace anycast;

std::vector<core::Measurement> rtt_measurements(
    const net::SimulatedInternet& internet,
    std::span<const net::VantagePoint> vps, ipaddr::IPv4Address target,
    std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  std::vector<core::Measurement> out;
  for (const net::VantagePoint& vp : vps) {
    double best = -1.0;
    for (int k = 0; k < 3; ++k) {
      const auto reply =
          internet.probe(vp, target, net::Protocol::kIcmpEcho, gen);
      if (reply.kind == net::ReplyKind::kEchoReply &&
          (best < 0.0 || reply.rtt_ms < best)) {
        best = reply.rtt_ms;
      }
    }
    if (best > 0.0) out.push_back({vp.id, vp.believed_location, best});
  }
  return out;
}

}  // namespace

int main() {
  using namespace anycast::bench;

  net::WorldConfig world_config;
  world_config.seed = 2015;
  world_config.unicast_alive_slash24 = 100;
  world_config.unicast_dead_slash24 = 100;
  const net::SimulatedInternet internet(world_config);
  const auto vps = net::make_planetlab({.node_count = 300, .seed = 9});
  const core::IGreedy igreedy(geo::world_index());

  print_title(
      "Baselines — iGreedy vs CHAOS [25] vs ECS [15,45] vs SOL [35]");
  std::printf("  %-18s %6s | %8s %8s %8s %8s | %8s %8s\n", "target",
              "truth", "SOL det", "CHAOS#", "ECS#", "iGreedy#", "geoloc",
              "");

  const char* kTargets[] = {"L-ROOT,US",    "OPENDNS,US", "CLOUDFLARENET,US",
                            "EDGECAST,US",  "FACEBOOK,US", "MICROSOFT,US",
                            "GOOGLE,US",    "LLNW,US",    "PROLEXIC,US"};
  bool chaos_gap_seen = false;
  bool ecs_gap_seen = false;
  for (const char* name : kTargets) {
    const net::Deployment* deployment = internet.deployment_by_name(name);
    std::size_t deployment_index = 0;
    for (std::size_t d = 0; d < internet.deployments().size(); ++d) {
      if (&internet.deployments()[d] == deployment) deployment_index = d;
    }
    const auto target = ipaddr::IPv4Address(
        deployment->prefixes[0].network().value() | 1);
    const auto measurements = rtt_measurements(internet, vps, target, 3);
    const bool sol = core::IGreedy::detect(measurements);
    const core::Result result = igreedy.analyze(measurements);
    const analysis::ChaosResult chaos =
        analysis::chaos_enumerate(internet, vps, target, 4);
    const analysis::EcsResult ecs = analysis::ecs_enumerate(
        internet, deployment_index, /*client_subnets=*/20000, 5);
    std::size_t geolocated = 0;
    for (const core::Replica& replica : result.replicas) {
      if (replica.city != nullptr) ++geolocated;
    }
    const auto opt = [](bool applicable, std::size_t count) {
      return applicable ? std::to_string(count) : std::string("N/A");
    };
    std::printf("  %-18s %6zu | %8s %8s %8s %8zu | %8zu %8s\n", name,
                deployment->sites.size(), sol ? "yes" : "no",
                opt(chaos.applicable, chaos.replica_count()).c_str(),
                opt(ecs.applicable, ecs.replica_count()).c_str(),
                result.replicas.size(), geolocated, "");
    if (!chaos.applicable && result.anycast) chaos_gap_seen = true;
    if (!ecs.applicable && result.anycast) ecs_gap_seen = true;
  }
  std::printf(
      "\n  CHAOS counts are exact where DNS runs but blind elsewhere and\n"
      "  never geolocates. ECS sweeps recover an adopter's FULL L7\n"
      "  footprint from one VP, but adoption is sparse and the technique\n"
      "  says nothing about BGP catchments. SOL detection [35] gives only\n"
      "  the anycast bit. iGreedy is the only service-agnostic option that\n"
      "  also geolocates — the design argument of Sec. 2.2.\n");
  return chaos_gap_seen && ecs_gap_seen ? 0 : 1;
}
