// Fig. 6 — "Response rates seen by heterogeneous protocols across
// different targets".
//
// ICMP has high recall everywhere; L4 (TCP SYN to 53/80) and L7 (DNS over
// UDP/TCP) probes have *binary* recall: ~100% when the target runs that
// service, ~0% otherwise. The bench sends 100 probes per (target, protocol)
// from a handful of VPs, as the paper's reduced-set test does.
#include "anycast/rng/random.hpp"
#include "common.hpp"

int main() {
  using namespace anycast;
  using namespace anycast::bench;

  net::WorldConfig world_config;
  world_config.seed = 2015;
  world_config.unicast_alive_slash24 = 100;
  world_config.unicast_dead_slash24 = 100;
  const net::SimulatedInternet internet(world_config);
  const auto vps = net::make_planetlab({.node_count = 5, .seed = 30});

  const char* kTargets[] = {"OPENDNS,US", "EDGECAST,US", "CLOUDFLARENET,US",
                            "MICROSOFT,US"};
  const net::Protocol kProtocols[] = {
      net::Protocol::kIcmpEcho, net::Protocol::kTcpSyn53,
      net::Protocol::kTcpSyn80, net::Protocol::kDnsUdp,
      net::Protocol::kDnsTcp};

  print_title("Fig. 6 — response ratio [%] per protocol and target");
  std::printf("  %-18s", "target");
  for (const net::Protocol protocol : kProtocols) {
    std::printf(" %9s", std::string(net::to_string(protocol)).c_str());
  }
  std::printf("\n");

  rng::Xoshiro256 gen(4);
  bool binary_recall_seen = false;
  for (const char* name : kTargets) {
    const net::Deployment* deployment = internet.deployment_by_name(name);
    const auto target = ipaddr::IPv4Address(
        deployment->prefixes[0].network().value() | 1);
    std::printf("  %-18s", name);
    for (const net::Protocol protocol : kProtocols) {
      int replies = 0;
      constexpr int kProbes = 100;
      for (int i = 0; i < kProbes; ++i) {
        const net::VantagePoint& vp = vps[static_cast<std::size_t>(i) %
                                          vps.size()];
        if (internet.probe(vp, target, protocol, gen).kind ==
            net::ReplyKind::kEchoReply) {
          ++replies;
        }
      }
      const double rate = 100.0 * replies / kProbes;
      if (protocol != net::Protocol::kIcmpEcho && rate < 5.0) {
        binary_recall_seen = true;
      }
      std::printf(" %8.0f%%", rate);
    }
    std::printf("\n");
  }

  std::printf(
      "\n  paper: ICMP ~100%% everywhere; other protocols 'binary' — they\n"
      "  work only when the service is known a priori (EdgeCast exposes\n"
      "  TCP/53 but answers no DNS queries; Fig. 6's L7 gap).\n");
  return binary_recall_seen ? 0 : 1;
}
