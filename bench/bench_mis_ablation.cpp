// Ablation — greedy 5-approximation MIS vs exact branch-and-bound.
//
// Sec. 2.1 claims the greedy "in practice yields results that are very
// close to the optimum provided by a prohibitively more costly brute force
// solution", and Sec. 3.5 reports ~0.1 s per target vs ~10^3 s for brute
// force. This google-benchmark binary measures both solvers' runtime on
// growing disk sets and a full iGreedy per-target analysis, then prints a
// solution-quality table.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "anycast/core/igreedy.hpp"
#include "anycast/core/mis.hpp"
#include "anycast/geo/city_data.hpp"
#include "anycast/geo/city_index.hpp"
#include "anycast/rng/distributions.hpp"

namespace {

using namespace anycast;

std::vector<geodesy::Disk> random_disks(std::size_t count,
                                        std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  std::vector<geodesy::Disk> disks;
  disks.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    disks.emplace_back(
        geodesy::GeoPoint(rng::uniform(gen, -60.0, 60.0),
                          rng::uniform(gen, -180.0, 180.0)),
        rng::uniform(gen, 100.0, 3500.0));
  }
  return disks;
}

void BM_GreedyMis(benchmark::State& state) {
  const auto disks = random_disks(static_cast<std::size_t>(state.range(0)),
                                  42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::greedy_mis(disks));
  }
}
BENCHMARK(BM_GreedyMis)->Arg(10)->Arg(30)->Arg(100)->Arg(300);

void BM_ExactMis(benchmark::State& state) {
  const auto disks = random_disks(static_cast<std::size_t>(state.range(0)),
                                  42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::exact_mis(disks));
  }
}
BENCHMARK(BM_ExactMis)->Arg(10)->Arg(20)->Arg(30);

// A full per-target analysis (the paper's ~0.1 s/target step) on a
// 300-measurement anycast row.
void BM_IGreedyAnalyze(benchmark::State& state) {
  rng::Xoshiro256 gen(7);
  const auto cities = geo::world_cities();
  std::vector<geodesy::GeoPoint> replicas;
  for (int i = 0; i < 12; ++i) {
    replicas.push_back(cities[rng::uniform_index(gen, 100)].location());
  }
  std::vector<core::Measurement> measurements;
  for (std::uint32_t v = 0; v < 300; ++v) {
    const geodesy::GeoPoint vp =
        cities[rng::uniform_index(gen, 300)].location();
    double best = 1e18;
    for (const auto& replica : replicas) {
      best = std::min(best, 2.0 * geodesy::distance_km(vp, replica) /
                                geodesy::kFiberSpeedKmPerMs);
    }
    measurements.push_back(core::Measurement{v, vp, best + 1.0});
  }
  const core::IGreedy igreedy(geo::world_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(igreedy.analyze(measurements));
  }
}
BENCHMARK(BM_IGreedyAnalyze);

void print_quality_table() {
  std::printf("\n--- greedy vs exact MIS solution quality ---\n");
  std::printf("  %6s %8s %8s %8s\n", "n", "greedy", "exact", "ratio");
  double worst = 1.0;
  for (const std::size_t n : {8u, 12u, 16u, 20u, 24u}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const auto disks = random_disks(n, seed * 97);
      const auto greedy = core::greedy_mis(disks).size();
      const auto exact = core::exact_mis(disks).size();
      const double ratio = static_cast<double>(greedy) /
                           static_cast<double>(exact);
      worst = std::min(worst, ratio);
      std::printf("  %6zu %8zu %8zu %8.2f\n", n, greedy, exact, ratio);
    }
  }
  std::printf("  worst observed ratio: %.2f (theory guarantees >= 0.20;\n"
              "  paper: greedy 'very close to the optimum')\n", worst);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_quality_table();
  return 0;
}
