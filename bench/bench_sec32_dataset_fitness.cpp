// Sec. 3.2 — why existing public datasets don't support an anycast census.
//
// CAIDA Archipelago probes every /24 every 2-3 days, but its VPs are split
// into three clusters, each probing a RANDOM address in each /24 (hit rate
// ~6%), so at most 3 monitors target a /24 — with generally different IPs.
// The bench emulates that measurement pattern against the simulated world
// and contrasts it with the census pattern (all VPs x one representative):
// Archipelago-style data detects almost no anycast and can't map
// footprints even when it hits.
#include "anycast/rng/distributions.hpp"
#include "common.hpp"

int main() {
  using namespace anycast;
  using namespace anycast::bench;

  net::WorldConfig world_config;
  world_config.seed = 2015;
  world_config.unicast_alive_slash24 = 3000;
  world_config.unicast_silent_slash24 = 3000;
  world_config.unicast_dead_slash24 = 3000;
  const net::SimulatedInternet internet(world_config);
  const census::Hitlist hitlist =
      census::Hitlist::from_world(internet).without_dead();
  const auto vps = net::make_planetlab({.node_count = 120, .seed = 32});
  const analysis::CensusAnalyzer analyzer(vps, geo::world_index());

  // --- Archipelago pattern: 3 clusters, one random-IP probe per /24 each.
  // A random IP hits an alive host with ~6% probability.
  constexpr double kArkHitRate = 0.06;
  constexpr int kClusters = 3;
  rng::Xoshiro256 gen(7);
  census::CensusMatrixBuilder ark_builder(hitlist.size());
  std::uint64_t ark_probes = 0;
  std::uint64_t ark_hits = 0;
  for (std::uint32_t t = 0; t < hitlist.size(); ++t) {
    for (int cluster = 0; cluster < kClusters; ++cluster) {
      // One monitor per cluster targets this /24 this cycle.
      const net::VantagePoint& vp =
          vps[static_cast<std::size_t>(cluster) * vps.size() / kClusters];
      ++ark_probes;
      if (!rng::bernoulli(gen, kArkHitRate)) continue;  // random-IP miss
      const auto reply = internet.probe(vp, hitlist[t].representative,
                                        net::Protocol::kIcmpEcho, gen);
      if (reply.kind == net::ReplyKind::kEchoReply) {
        ++ark_hits;
        ark_builder.add(t, static_cast<std::uint16_t>(vp.id),
                        static_cast<float>(reply.rtt_ms));
      }
    }
  }
  const census::CensusMatrix ark_data = ark_builder.build();
  const auto ark_outcomes = analyzer.analyze(ark_data, hitlist);

  // --- Census pattern: every VP probes the representative of every /24.
  census::Greylist blacklist;
  census::FastPingConfig fastping;
  fastping.seed = 8;
  const auto census_output =
      run_census(internet, vps, hitlist, blacklist, fastping);
  const auto census_outcomes = analyzer.analyze(census_output.data, hitlist);

  print_title("Sec. 3.2 — Archipelago-style dataset vs dedicated census");
  std::printf("  %-38s %16s %16s\n", "metric", "Archipelago", "census");
  print_compare("probes per /24", "3 (max)",
                std::to_string(vps.size()));
  print_compare("hit rate", fmt_pct(static_cast<double>(ark_hits) /
                                    static_cast<double>(ark_probes), 1),
                "~45% (alive targets)");
  print_compare("targets with >=2 usable RTTs",
                fmt_int(ark_data.responsive_targets(2)),
                fmt_int(census_output.data.responsive_targets(2)));
  print_compare("anycast /24 detected", fmt_int(ark_outcomes.size()),
                fmt_int(census_outcomes.size()));
  std::printf(
      "\n  paper: 'such dataset is not appropriate for our purpose, as it\n"
      "  would not lead to a complete census, nor to an accurate\n"
      "  geolocation footprint even in case of hits' (Sec. 3.2).\n");
  return ark_outcomes.size() * 10 < census_outcomes.size() ? 0 : 1;
}
