// Fig. 15 — "Complementary CDF of the number of open TCP ports per AS":
// most ASes expose a handful of ports; the tail is carried by Incapsula
// (~313, a proxying DDoS-mitigation service) and OVH (~10,148, the
// seedbox-hosting effect of Sec. 4.3).
#include "anycast/analysis/stats.hpp"
#include "anycast/portscan/scanner.hpp"
#include "common.hpp"

int main() {
  using namespace anycast;
  using namespace anycast::bench;

  net::WorldConfig world_config;
  world_config.seed = 2015;
  world_config.unicast_alive_slash24 = 100;
  world_config.unicast_dead_slash24 = 100;
  const net::SimulatedInternet internet(world_config);
  const portscan::PortScanner scanner(internet);
  const auto scans = scanner.scan_all(internet.deployments().subspan(0, 100));

  std::vector<double> ports_per_as;
  for (const portscan::DeploymentScan& scan : scans) {
    ports_per_as.push_back(static_cast<double>(scan.open_ports.size()));
  }
  const analysis::Empirical dist(ports_per_as);

  print_title("Fig. 15 — CCDF of open TCP ports per AS (top-100 ASes)");
  std::printf("  %10s %12s\n", "x (ports)", "P(X >= x)");
  for (const double x : {1.0, 2.0, 4.0, 5.0, 10.0, 100.0, 300.0, 1000.0,
                         10000.0}) {
    std::printf("  %10.0f %12.2f\n", x, dist.ccdf(x - 1.0));
  }

  print_subtitle("checks");
  std::printf("  %-38s %16s %16s\n", "metric", "paper", "measured");
  print_compare("ASes with >= 1 open port", "81/100",
                fmt_pct(dist.ccdf(0.0), 0));
  print_compare("ASes with >= 5 open ports", "~10-20%",
                fmt_pct(dist.ccdf(4.0), 0));
  print_compare("ASes with >= 4 distinct ports", "22",
                fmt_int(static_cast<std::uint64_t>(
                    dist.ccdf(3.0) * static_cast<double>(dist.size()))));

  const portscan::PortScanner full(internet);
  const auto ovh = full.scan(*internet.deployment_by_name("OVH,FR"));
  const auto incapsula =
      full.scan(*internet.deployment_by_name("INCAPSULA,US"));
  print_compare("OVH open ports", "10,148", fmt_int(ovh.open_ports.size()));
  print_compare("Incapsula open ports", "313",
                fmt_int(incapsula.open_ports.size()));

  const bool sane = ovh.open_ports.size() > 9500 &&
                    incapsula.open_ports.size() > 250 &&
                    dist.ccdf(0.0) > 0.7;
  return sane ? 0 : 1;
}
