// Sec. 3.4 — OpenDNS consistency check and the population-bias anecdote.
//
// The paper enumerates OpenDNS (24 published locations) with five different
// RTT measurement techniques: all yield 15-17 instances, and all classified
// cities are correct except the Ashburn site, reported as Philadelphia
// because the classifier is biased toward city population (Philadelphia is
// 33x more populated; the paper argues the "logical" serving city is fine).
#include <set>

#include "anycast/core/igreedy.hpp"
#include "anycast/rng/random.hpp"
#include "common.hpp"

int main() {
  using namespace anycast;
  using namespace anycast::bench;

  net::WorldConfig world_config;
  world_config.seed = 2015;
  world_config.unicast_alive_slash24 = 100;
  world_config.unicast_dead_slash24 = 100;
  const net::SimulatedInternet internet(world_config);
  const auto vps = net::make_planetlab({.node_count = 300, .seed = 9});

  const net::Deployment* opendns = internet.deployment_by_name("OPENDNS,US");
  const auto target =
      ipaddr::IPv4Address(opendns->prefixes[0].network().value() | 1);

  const net::Protocol kProtocols[] = {
      net::Protocol::kIcmpEcho, net::Protocol::kTcpSyn53,
      net::Protocol::kTcpSyn80, net::Protocol::kDnsUdp,
      net::Protocol::kDnsTcp};

  print_title("Sec. 3.4 — OpenDNS: per-protocol enumeration consistency");
  std::printf("  deployment has %zu true sites (paper PAI: 24 locations)\n",
              opendns->sites.size());
  std::printf("\n  %-10s %10s   %s\n", "protocol", "instances",
              "paper: 15-17 for all protocols");

  const core::IGreedy igreedy(geo::world_index());
  rng::Xoshiro256 gen(17);
  std::set<std::size_t> counts;
  bool ashburn_as_philly = false;
  std::size_t min_count = 1e9;
  std::size_t max_count = 0;
  for (const net::Protocol protocol : kProtocols) {
    std::vector<core::Measurement> measurements;
    for (const net::VantagePoint& vp : vps) {
      double best = -1.0;
      for (int k = 0; k < 3; ++k) {
        const auto reply = internet.probe(vp, target, protocol, gen);
        if (reply.kind == net::ReplyKind::kEchoReply &&
            (best < 0.0 || reply.rtt_ms < best)) {
          best = reply.rtt_ms;
        }
      }
      if (best > 0.0) {
        measurements.push_back(
            core::Measurement{vp.id, vp.believed_location, best});
      }
    }
    const core::Result result = igreedy.analyze(measurements);
    std::printf("  %-10s %10zu\n",
                std::string(net::to_string(protocol)).c_str(),
                result.replicas.size());
    min_count = std::min(min_count, result.replicas.size());
    max_count = std::max(max_count, result.replicas.size());
    for (const core::Replica& replica : result.replicas) {
      if (replica.city != nullptr &&
          (replica.city->name == "Philadelphia" ||
           replica.city->name == "Washington" ||
           replica.city->name == "Baltimore")) {
        // The Ashburn site classified into the DC corridor's big cities.
        ashburn_as_philly = true;
      }
    }
  }

  print_subtitle("population-bias misclassification (Ashburn case)");
  std::printf(
      "  Ashburn site classified as a nearby metropolis by at least one\n"
      "  protocol run: %s (paper: Ashburn reported as Philadelphia, 260 km\n"
      "  away, because Philadelphia is 33x more populated)\n",
      ashburn_as_philly ? "YES" : "no");

  // Consistency: all protocols within a few instances of each other.
  const bool consistent = max_count - min_count <= 4 && min_count >= 10;
  return consistent ? 0 : 1;
}
