// Anycast service census (Sec. 4.3): portscan the top anycast deployments,
// classify open ports against the well-known registry, and print the
// per-AS service and software inventory — the data behind Figs. 14-16.
#include <cstdio>
#include <string>

#include "anycast/net/internet.hpp"
#include "anycast/portscan/scanner.hpp"

int main(int argc, char** argv) {
  using namespace anycast;

  const std::size_t rows = argc > 1 ? std::stoul(argv[1]) : 15;

  net::WorldConfig world_config;
  world_config.seed = 2015;
  world_config.unicast_alive_slash24 = 100;
  world_config.unicast_dead_slash24 = 100;
  const net::SimulatedInternet internet(world_config);
  const portscan::PortScanner scanner(internet);

  const auto scans = scanner.scan_all(internet.deployments().subspan(0, 100));
  const portscan::ScanStatistics stats = portscan::summarize(scans);
  std::printf(
      "scanned %zu ASes: %llu responsive IPs, %llu distinct open ports, "
      "%llu well-known services, %llu software packages\n\n",
      scans.size(),
      static_cast<unsigned long long>(stats.ips_responsive),
      static_cast<unsigned long long>(stats.distinct_open_ports),
      static_cast<unsigned long long>(stats.well_known),
      static_cast<unsigned long long>(stats.software_packages));

  std::printf("%-18s %6s %8s  %s\n", "AS", "IPs", "ports", "services");
  for (std::size_t i = 0; i < rows && i < scans.size(); ++i) {
    const portscan::DeploymentScan& scan = scans[i];
    std::string services;
    int listed = 0;
    for (const portscan::PortHit& hit : scan.open_ports) {
      if (hit.service.empty()) continue;
      if (listed == 6) {
        services += ", ...";
        break;
      }
      if (listed > 0) services += ", ";
      services += std::string(hit.service);
      if (!hit.software.empty()) {
        services += "[" + std::string(hit.software) + "]";
      }
      ++listed;
    }
    std::printf("%-18s %6u %8zu  %s\n",
                scan.deployment->whois_name.c_str(), scan.ips_responsive,
                scan.open_ports.size(), services.c_str());
  }
  return stats.ases_with_open_port > 0 ? 0 : 1;
}
