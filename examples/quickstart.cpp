// Quickstart: detect, enumerate, and geolocate one anycast deployment.
//
// Builds a simulated Internet, probes one CloudFlare /24 from a
// PlanetLab-like platform, and runs the iGreedy analysis — the minimal
// end-to-end path through the library.
#include <cstdio>
#include <vector>

#include "anycast/core/igreedy.hpp"
#include "anycast/geo/city_index.hpp"
#include "anycast/net/internet.hpp"
#include "anycast/net/platform.hpp"
#include "anycast/rng/random.hpp"

int main() {
  using namespace anycast;

  // A small world: the full anycast catalog, light unicast background.
  net::WorldConfig world_config;
  world_config.unicast_alive_slash24 = 2000;
  world_config.unicast_dead_slash24 = 2000;
  const net::SimulatedInternet internet(world_config);

  // ~300 PlanetLab-like vantage points.
  const auto vps = net::make_planetlab({.node_count = 300, .seed = 42});

  // Pick a CloudFlare anycast /24 and ping it from every VP.
  const net::Deployment* cloudflare =
      internet.deployment_by_name("CLOUDFLARENET,US");
  if (cloudflare == nullptr) {
    std::fprintf(stderr, "catalog is missing CloudFlare?\n");
    return 1;
  }
  const ipaddr::IPv4Address target = ipaddr::IPv4Address(
      cloudflare->prefixes.front().network().value() | 1);
  std::printf("target: %s (%s, %zu sites worldwide)\n",
              target.to_string().c_str(), cloudflare->whois_name.c_str(),
              cloudflare->sites.size());

  rng::Xoshiro256 gen(7);
  std::vector<core::Measurement> measurements;
  for (const net::VantagePoint& vp : vps) {
    const net::ProbeReply reply =
        internet.probe(vp, target, net::Protocol::kIcmpEcho, gen);
    if (reply.kind == net::ReplyKind::kEchoReply) {
      measurements.push_back(
          core::Measurement{vp.id, vp.believed_location, reply.rtt_ms});
    }
  }
  std::printf("echo replies: %zu / %zu VPs\n", measurements.size(),
              vps.size());

  // Detection + enumeration + geolocation.
  const core::IGreedy igreedy(geo::world_index());
  const core::Result result = igreedy.analyze(measurements);
  std::printf("anycast: %s  (replicas: %zu, iGreedy iterations: %d)\n",
              result.anycast ? "YES" : "no", result.replicas.size(),
              result.iterations);
  for (const core::Replica& replica : result.replicas) {
    std::printf("  replica near %-18s disk radius %7.0f km (VP %u)\n",
                replica.city != nullptr ? replica.city->display().c_str()
                                        : "(no city in disk)",
                replica.disk.radius_km(), replica.vp_id);
  }
  return result.anycast ? 0 : 1;
}
