// Platform comparison (Sec. 3.2 / Fig. 5): the same deployment seen from a
// PlanetLab-like platform and from a denser RIPE-Atlas-like platform.
// Prints the per-platform replica lists side by side; PL's findings are a
// subset of RIPE's, and the RIPE-only sites are the poorly-peered ones
// only a nearby probe can catch.
#include <cstdio>
#include <set>
#include <string>

#include "anycast/core/igreedy.hpp"
#include "anycast/geo/city_index.hpp"
#include "anycast/net/internet.hpp"
#include "anycast/net/platform.hpp"
#include "anycast/rng/random.hpp"

namespace {

using namespace anycast;

std::set<std::string> enumerate_from(
    const net::SimulatedInternet& internet,
    std::span<const net::VantagePoint> vps, ipaddr::IPv4Address target,
    std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  std::vector<core::Measurement> measurements;
  for (const net::VantagePoint& vp : vps) {
    double best = -1.0;
    for (int k = 0; k < 3; ++k) {
      const auto reply =
          internet.probe(vp, target, net::Protocol::kIcmpEcho, gen);
      if (reply.kind == net::ReplyKind::kEchoReply &&
          (best < 0.0 || reply.rtt_ms < best)) {
        best = reply.rtt_ms;
      }
    }
    if (best > 0.0) {
      measurements.push_back({vp.id, vp.believed_location, best});
    }
  }
  const core::IGreedy igreedy(geo::world_index());
  std::set<std::string> cities;
  for (const core::Replica& replica : igreedy.analyze(measurements).replicas) {
    if (replica.city != nullptr) cities.insert(replica.city->display());
  }
  return cities;
}

}  // namespace

int main(int argc, char** argv) {
  // Usage: platform_comparison [WHOIS-name]
  const std::string whois = argc > 1 ? argv[1] : "MICROSOFT,US";

  net::WorldConfig world_config;
  world_config.seed = 2015;
  world_config.unicast_alive_slash24 = 100;
  world_config.unicast_dead_slash24 = 100;
  const net::SimulatedInternet internet(world_config);
  const net::Deployment* deployment = internet.deployment_by_name(whois);
  if (deployment == nullptr) {
    std::fprintf(stderr, "unknown deployment '%s'\n", whois.c_str());
    return 2;
  }
  const auto target =
      ipaddr::IPv4Address(deployment->prefixes[0].network().value() | 1);

  const auto planetlab = net::make_planetlab({.node_count = 300, .seed = 9});
  const auto ripe = net::make_ripe_atlas({.node_count = 1500, .seed = 9});
  const auto pl_cities = enumerate_from(internet, planetlab, target, 1);
  const auto ripe_cities = enumerate_from(internet, ripe, target, 2);

  std::printf("%s: %zu true sites; PL finds %zu, RIPE finds %zu\n",
              whois.c_str(), deployment->sites.size(), pl_cities.size(),
              ripe_cities.size());
  std::printf("\n%-26s %s\n", "replica city", "seen by");
  for (const std::string& city : ripe_cities) {
    std::printf("%-26s %s\n", city.c_str(),
                pl_cities.contains(city) ? "PL + RIPE" : "RIPE only");
  }
  for (const std::string& city : pl_cities) {
    if (!ripe_cities.contains(city)) {
      std::printf("%-26s %s\n", city.c_str(), "PL only (noise)");
    }
  }
  std::printf(
      "\nAn intriguing direction is to combine both platforms, e.g. refine\n"
      "via RIPE the geolocation of anycast /24 detected via PL (Sec. 3.2).\n");
  return 0;
}
