// BGP hijack detection — the Sec. 5 future-work application.
//
// "Detecting geo-inconsistencies for knowingly unicast prefixes is
// symptomatic of BGP hijacking attacks." This example monitors a unicast
// /24, then simulates a regional hijack (part of the Internet routes the
// prefix to an impostor on another continent) by splicing the impostor's
// RTTs into some vantage points' measurements. The same iGreedy detection
// that finds anycast now raises a hijack alarm, and geolocation points at
// the impostor's region.
#include <cstdio>
#include <vector>

#include "anycast/core/igreedy.hpp"
#include "anycast/geo/city_index.hpp"
#include "anycast/net/internet.hpp"
#include "anycast/net/platform.hpp"
#include "anycast/rng/random.hpp"

namespace {

using namespace anycast;

/// Minimum-of-3 ICMP RTTs from every VP to `target`.
std::vector<core::Measurement> measure(
    const net::SimulatedInternet& internet,
    std::span<const net::VantagePoint> vps, ipaddr::IPv4Address target,
    rng::Xoshiro256& gen) {
  std::vector<core::Measurement> out;
  for (const net::VantagePoint& vp : vps) {
    double best = -1.0;
    for (int k = 0; k < 3; ++k) {
      const auto reply =
          internet.probe(vp, target, net::Protocol::kIcmpEcho, gen);
      if (reply.kind == net::ReplyKind::kEchoReply &&
          (best < 0.0 || reply.rtt_ms < best)) {
        best = reply.rtt_ms;
      }
    }
    if (best > 0.0) out.push_back({vp.id, vp.believed_location, best});
  }
  return out;
}

}  // namespace

int main() {
  net::WorldConfig world_config;
  world_config.seed = 13;
  world_config.unicast_alive_slash24 = 2000;
  world_config.unicast_dead_slash24 = 500;
  world_config.prohibited_fraction = 0.0;
  const net::SimulatedInternet internet(world_config);
  const auto vps = net::make_planetlab({.node_count = 200, .seed = 14});
  rng::Xoshiro256 gen(15);

  // Pick a live unicast /24 — the prefix we "own" and monitor.
  const net::TargetInfo* victim = nullptr;
  for (const net::TargetInfo& info : internet.targets()) {
    if (info.kind == net::TargetInfo::Kind::kUnicast && info.alive &&
        info.error_kind == net::ReplyKind::kEchoReply) {
      victim = &info;
      break;
    }
  }
  const auto target =
      ipaddr::IPv4Address::from_slash24_index(victim->slash24_index, 1);
  const geo::CityIndex& cities = geo::world_index();
  std::printf("monitoring %s/24, legitimately hosted near %s\n",
              target.slash24_base().to_string().c_str(),
              cities.nearest(victim->unicast_location)->display().c_str());

  // Baseline scan: geo-consistent, no alarm.
  const core::IGreedy igreedy(cities);
  auto baseline = measure(internet, vps, target, gen);
  const core::Result before = igreedy.analyze(baseline);
  std::printf("baseline scan: %zu VPs, anycast/hijack alarm: %s\n",
              baseline.size(), before.anycast ? "RAISED" : "clear");

  // The hijack: an impostor in Singapore attracts the catchment of the
  // VPs whose (hashed) upstream accepts the bogus announcement.
  const geo::City* impostor_city = cities.by_name("Singapore");
  auto hijacked = baseline;
  std::size_t diverted = 0;
  for (core::Measurement& m : hijacked) {
    if (m.vp_id % 3 == 0) {  // a third of the Internet believes the lie
      const double km = geodesy::distance_km(m.vp_location,
                                             impostor_city->location());
      m.rtt_ms = geodesy::distance_to_min_rtt_ms(km) * 1.3 + 1.0;
      ++diverted;
    }
  }
  std::printf("hijack: %zu of %zu catchments diverted to an impostor\n",
              diverted, hijacked.size());

  const core::Result after = igreedy.analyze(hijacked);
  std::printf("re-scan: anycast/hijack alarm: %s (%zu apparent replicas)\n",
              after.anycast ? "RAISED" : "clear", after.replicas.size());
  for (const core::Replica& replica : after.replicas) {
    std::printf("  apparent origin near %s\n",
                replica.city != nullptr ? replica.city->display().c_str()
                                        : "(unknown)");
  }
  std::printf(
      "\nA knowingly-unicast prefix showing a speed-of-light violation is\n"
      "a hijack signature: periodic censuses can raise such alarms and\n"
      "cross-check them against BGP feeds (Sec. 5).\n");
  return !before.anycast && after.anycast ? 0 : 1;
}
