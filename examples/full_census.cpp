// Full census walkthrough: the paper's complete workflow (Fig. 1) in one
// program — build the world, run multiple censuses from a PlanetLab-like
// platform with greylisting, combine them by per-pair minimum RTT, run the
// iGreedy analysis, and print the characterisation summary.
#include <cstdio>

#include "anycast/analysis/analyzer.hpp"
#include "anycast/analysis/report.hpp"
#include "anycast/census/census.hpp"
#include "anycast/concurrency/thread_pool.hpp"
#include "anycast/geo/city_index.hpp"
#include "anycast/net/platform.hpp"

int main() {
  using namespace anycast;

  // 1. Measurement substrate: a 1:300-scale Internet (full anycast
  //    population, sampled unicast background).
  net::WorldConfig world_config;
  world_config.seed = 7;
  world_config.unicast_alive_slash24 = 9000;
  world_config.unicast_silent_slash24 = 10000;
  world_config.unicast_dead_slash24 = 10000;
  const net::SimulatedInternet internet(world_config);
  const auto vps = net::make_planetlab({.node_count = 200, .seed = 8});
  std::printf("world: %zu routed /24, %zu anycast deployments; %zu VPs\n",
              internet.targets().size(), internet.deployments().size(),
              vps.size());

  // 2. Hitlist: one representative per routed /24, dead space dropped.
  const census::Hitlist hitlist =
      census::Hitlist::from_world(internet).without_dead();
  std::printf("hitlist: %zu probed targets\n", hitlist.size());

  // 3. Censuses: each VP pings every target in LFSR order; ICMP
  //    prohibitions feed the greylist, merged into the blacklist between
  //    censuses. One pool drives every VP walk and the analysis sweep;
  //    output is identical for any thread count (merge order is fixed).
  concurrency::ThreadPool pool;  // one lane per core
  census::Greylist blacklist;
  census::CensusMatrix combined(hitlist.size());
  for (int c = 0; c < 3; ++c) {
    census::FastPingConfig fastping;
    fastping.seed = 100 + static_cast<std::uint64_t>(c);
    const census::CensusOutput output = run_census(
        internet, vps, hitlist, blacklist, fastping, /*faults=*/nullptr,
        &pool);
    std::printf(
        "census %d: %llu probes, %llu replies, %llu errors (%zu newly "
        "greylisted)\n",
        c + 1,
        static_cast<unsigned long long>(output.summary.probes_sent),
        static_cast<unsigned long long>(output.summary.echo_replies),
        static_cast<unsigned long long>(output.summary.errors),
        output.summary.greylist_new);
    combined.combine_min(output.data);
  }

  // 4. Analysis: speed-of-light detection, then iGreedy enumeration and
  //    geolocation per detected /24.
  const analysis::CensusAnalyzer analyzer(vps, geo::world_index());
  const analysis::CensusReport report(
      internet, analyzer.analyze(combined, hitlist, /*min_vps=*/2, &pool));

  // 5. Characterisation: the Fig. 10-style summary.
  const analysis::GlanceRow all = report.glance_all();
  std::printf("\nanycast found: %zu /24 in %zu ASes, %llu replicas across "
              "%zu cities in %zu countries\n",
              all.ip24, all.ases,
              static_cast<unsigned long long>(all.replicas), all.cities,
              all.countries);

  std::printf("\ntop-10 ASes by geographic footprint:\n");
  const auto ases = report.ases();
  for (std::size_t i = 0; i < 10 && i < ases.size(); ++i) {
    std::printf("  %2zu. %-18s %-8s mean %.1f replicas over %zu /24\n",
                i + 1, ases[i].deployment->whois_name.c_str(),
                std::string(net::to_string(ases[i].deployment->category))
                    .c_str(),
                ases[i].mean_replicas, ases[i].detected_ip24);
  }
  return all.ip24 > 0 ? 0 : 1;
}
