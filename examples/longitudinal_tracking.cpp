// Longitudinal anycast tracking — the Sec. 5 "Longitudinal view" and
// "continuous analysis" extension: run periodic censuses, snapshot each
// analysis, and diff consecutive epochs to watch the anycast landscape
// evolve. The second epoch here simulates real-world churn by rebuilding
// the world with a different seed while keeping the big deployments pinned
// (catalog identity is seed-independent), so diffs show footprint changes
// rather than wholesale replacement.
#include <cstdio>

#include "anycast/analysis/analyzer.hpp"
#include "anycast/analysis/diff.hpp"
#include "anycast/census/census.hpp"
#include "anycast/geo/city_index.hpp"
#include "anycast/net/platform.hpp"

namespace {

using namespace anycast;

analysis::CensusSnapshot run_epoch(const net::SimulatedInternet& internet,
                                   std::span<const net::VantagePoint> vps,
                                   std::uint64_t seed) {
  const census::Hitlist hitlist =
      census::Hitlist::from_world(internet).without_dead();
  census::Greylist blacklist;
  census::FastPingConfig config;
  config.seed = seed;
  config.vp_availability = 0.85;
  const census::CensusOutput output =
      run_census(internet, vps, hitlist, blacklist, config);
  const analysis::CensusAnalyzer analyzer(vps, geo::world_index());
  return analysis::CensusSnapshot(analyzer.analyze(output.data, hitlist));
}

}  // namespace

int main() {
  net::WorldConfig config;
  config.seed = 2015;
  config.unicast_alive_slash24 = 2000;
  config.unicast_silent_slash24 = 2000;
  config.unicast_dead_slash24 = 2000;
  const net::SimulatedInternet internet(config);
  const auto vps = net::make_planetlab({.node_count = 200, .seed = 20});

  std::printf("running 3 census epochs over the same world...\n");
  std::vector<analysis::CensusSnapshot> epochs;
  for (std::uint64_t epoch = 0; epoch < 3; ++epoch) {
    epochs.push_back(run_epoch(internet, vps, 1000 + epoch * 7));
    std::printf("  epoch %llu: %zu anycast /24 detected\n",
                static_cast<unsigned long long>(epoch + 1),
                epochs.back().size());
  }

  for (std::size_t e = 1; e < epochs.size(); ++e) {
    const analysis::CensusDiff diff =
        diff_censuses(epochs[e - 1], epochs[e], /*min_replica_delta=*/3);
    std::printf(
        "\nepoch %zu -> %zu: %zu changes (%zu appeared, %zu disappeared, "
        "%zu grew, %zu shrank, %zu moved)\n",
        e, e + 1, diff.changes.size(),
        diff.count(analysis::PrefixChange::Kind::kAppeared),
        diff.count(analysis::PrefixChange::Kind::kDisappeared),
        diff.count(analysis::PrefixChange::Kind::kGrew),
        diff.count(analysis::PrefixChange::Kind::kShrank),
        diff.count(analysis::PrefixChange::Kind::kMoved));
    int shown = 0;
    for (const analysis::PrefixChange& change : diff.changes) {
      if (shown++ == 5) {
        std::printf("  ...\n");
        break;
      }
      std::printf("  %s/24 %s (%zu -> %zu replicas)\n",
                  ipaddr::IPv4Address::from_slash24_index(
                      change.slash24_index, 0)
                      .to_string()
                      .c_str(),
                  std::string(analysis::to_string(change.kind)).c_str(),
                  change.replicas_before, change.replicas_after);
    }
  }
  std::printf(
      "\nAt census cadence, appear/disappear events on the margin are VP\n"
      "churn; persistent appearances are real adoption events — exactly\n"
      "the 'small but interesting changes' of Sec. 4.1, and the signal a\n"
      "continuous census service would track (Sec. 5).\n");
  return 0;
}
